//! Cross-property schema exploration cache.
//!
//! Holistic verification checks *many* properties of the *same*
//! automaton (the paper's Table 2 runs nine properties over three
//! automata). The schedule DFS of [`Checker`](crate::Checker) spends
//! most of its time discovering, per property, which context chains
//! are feasible — but feasibility of a chain depends only on the *base
//! encoding* (automaton, globally-empty locations, initial-state
//! proposition, segment copies), not on the property's witness or tail
//! constraints, which live in a separate solver scope. This module
//! memoizes that discovery so the lattice is explored once per base
//! encoding and *replayed* for every later property.
//!
//! Three levels of reuse, strongest first:
//!
//! 1. **Replay** — a later query with the *same* [`ExplorationKey`]
//!    skips feasibility checks entirely: the recorded feasible chains
//!    are walked in canonical order and only the per-property query
//!    check runs on each.
//! 2. **Pruning** — a recorded exploration under a *weaker* base (fewer
//!    globally-empty locations, trivial `initially`, at least as many
//!    copies) soundly transfers its *infeasible* verdicts: removing
//!    constraints can only grow the feasible set, and extra segment
//!    copies can only make more chains feasible (surplus factors are
//!    zeroable), so "infeasible under the weaker base" implies
//!    "infeasible here".
//! 3. **Skeleton** — when nothing recorded matches, the checker first
//!    explores the weakest base of the automaton (`initially = True`,
//!    no globally-empty locations) without any query checks and records
//!    it; every subsequent property of the automaton then prunes
//!    against it. This is what guarantees nonzero cache-hit counters
//!    for every property after the first.
//!
//! Verdicts are stored per *chain* (the strictly increasing context
//! sequence identifying a lattice node) in canonical lexicographic
//! order, which equals DFS preorder when children are visited in
//! ascending context order — so a recording assembled from parallel
//! workers in any completion order still replays deterministically.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, Mutex};

use holistic_ltl::Prop;
use holistic_ta::{LocationId, ThresholdAutomaton};

/// Everything that determines per-chain feasibility of the schedule
/// DFS's base encoding. Two queries with equal keys have identical
/// feasible frontiers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExplorationKey {
    /// Structural fingerprint of the automaton.
    automaton: u64,
    /// Locations forced empty for the whole run (sorted).
    globally_empty: Vec<LocationId>,
    /// Canonical rendering of the `initially` proposition.
    initially: String,
    /// Segment copies pushed per context (1 + unstable witnesses).
    copies: usize,
}

/// Fingerprints an automaton's structure (locations, variables, rules,
/// resilience). In-process only: the cache never outlives the run, so a
/// deterministic hash of the debug rendering suffices.
fn fingerprint(ta: &ThresholdAutomaton) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{ta:?}").hash(&mut h);
    h.finish()
}

impl ExplorationKey {
    /// The key for a query's base encoding.
    pub fn new(
        ta: &ThresholdAutomaton,
        globally_empty: &[LocationId],
        initially: &Prop,
        copies: usize,
    ) -> ExplorationKey {
        let mut ge = globally_empty.to_vec();
        ge.sort_unstable();
        ge.dedup();
        ExplorationKey {
            automaton: fingerprint(ta),
            globally_empty: ge,
            initially: format!("{initially:?}"),
            copies,
        }
    }

    /// The weakest base of the same automaton at the same copies: no
    /// globally-empty locations, trivial `initially`.
    pub fn skeleton(&self) -> ExplorationKey {
        ExplorationKey {
            automaton: self.automaton,
            globally_empty: Vec::new(),
            initially: format!("{:?}", Prop::True),
            copies: self.copies,
        }
    }

    /// Whether this key already *is* its own skeleton.
    pub fn is_skeleton(&self) -> bool {
        self.globally_empty.is_empty() && self.initially == format!("{:?}", Prop::True)
    }

    /// The automaton's *base* key: the skeleton at **one** segment
    /// copy. This is the most transferable recording possible — its
    /// core patterns transfer everywhere
    /// ([`transfers_cores`](ExplorationKey::transfers_cores)), its
    /// feasible verdicts feed every *skeleton* query at any copies
    /// ([`feeds_feasible`](ExplorationKey::feeds_feasible)), and its
    /// infeasible verdicts prune every single-copy query
    /// ([`prunes`](ExplorationKey::prunes)) — while also being the
    /// cheapest to record (smallest tableau).
    pub fn base(&self) -> ExplorationKey {
        ExplorationKey {
            copies: 1,
            ..self.skeleton()
        }
    }

    /// Whether an exploration recorded under `self` soundly transfers
    /// its *infeasible* verdicts to a query keyed `other`:
    /// same automaton, weaker-or-equal constraints, at least as many
    /// copies.
    pub fn prunes(&self, other: &ExplorationKey) -> bool {
        self.automaton == other.automaton
            && self.copies >= other.copies
            && (self.initially == other.initially || self.initially == format!("{:?}", Prop::True))
            && self
                .globally_empty
                .iter()
                .all(|l| other.globally_empty.contains(l))
    }

    /// Whether core patterns recorded under `self` soundly transfer to
    /// a query keyed `other`. Unlike chain verdicts, patterns are
    /// **copies-independent**: the probe system they certify collapses
    /// *any* number of segments into one (see
    /// [`Encoding::probe_core_pattern`](crate::Encoding::probe_core_pattern)),
    /// so only the base constraints must be weaker-or-equal — the same
    /// conditions as [`prunes`](ExplorationKey::prunes) minus the
    /// copies comparison.
    pub fn transfers_cores(&self, other: &ExplorationKey) -> bool {
        self.automaton == other.automaton
            && (self.initially == other.initially || self.initially == format!("{:?}", Prop::True))
            && self
                .globally_empty
                .iter()
                .all(|l| other.globally_empty.contains(l))
    }

    /// Whether *feasible* verdicts recorded under `self` soundly
    /// transfer to a query keyed `other` — the mirror image of
    /// [`prunes`](ExplorationKey::prunes): a witness run stays valid
    /// when constraints are *dropped* (so `other`'s base must be
    /// weaker-or-equal) and when *extra* segment copies are available
    /// (the witness shifts each context's factors into the **last**
    /// copy; interior boundaries then carry the context's entry values,
    /// where the locked-guard-false constraints already held, and the
    /// entry boundary keeps its original guard-unlock values).
    pub fn feeds_feasible(&self, other: &ExplorationKey) -> bool {
        self.automaton == other.automaton
            && self.copies <= other.copies
            && (self.initially == other.initially || other.initially == format!("{:?}", Prop::True))
            && other
                .globally_empty
                .iter()
                .all(|l| self.globally_empty.contains(l))
    }
}

/// A learned infeasibility tri-pattern `(mask, held, delta)`, distilled
/// from a Farkas-certificate UNSAT core (see
/// [`Encoding::probe_core_pattern`](crate::Encoding::probe_core_pattern)):
/// *no* chain of the exploration whose contexts are all `⊆ mask` and
/// whose final context contains `held` can be feasibly extended by a
/// step that newly unlocks `delta` (or any superset of it). `held = 0`
/// is the unconditional pattern of earlier revisions; a non-zero `held`
/// records that the certificate additionally relied on an
/// already-crossed monotone guard still holding at the final boundary.
/// Patterns generalize single infeasible chains to whole sublattices,
/// which is what lets one SMT refutation prune many schemas.
///
/// The set keeps only maximally general patterns: `(m, h, d)` subsumes
/// `(m', h', d')` when `m' ⊆ m`, `h ⊆ h'` and `d ⊆ d'` (a larger
/// context mask prunes more prefixes; a smaller held set and a smaller
/// delta each prune more extensions). Lookups are indexed by the lowest
/// set bit of `delta` — a pattern can only match an attempt whose
/// newly-unlocked set contains that bit — so the hot `prunes` path
/// scans a few small buckets instead of every pattern.
#[derive(Debug, Default, Clone)]
pub struct CorePatternSet {
    /// Patterns bucketed by `delta.trailing_zeros()`.
    buckets: HashMap<u32, Vec<(u64, u64, u64)>>,
    len: usize,
}

impl CorePatternSet {
    /// An empty set.
    pub fn new() -> CorePatternSet {
        CorePatternSet::default()
    }

    /// Number of (maximally general) stored patterns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All stored patterns, sorted for deterministic output.
    pub fn patterns(&self) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = self.buckets.values().flatten().copied().collect();
        out.sort_unstable();
        out
    }

    /// The union of guard bits appearing in any pattern's `held` or
    /// `delta` — the guards that recur in Farkas certificates. Feeds
    /// the checker's case-split planner
    /// ([`Encoding::set_hot_guards`](crate::Encoding::set_hot_guards)):
    /// boundaries entered on these guards are the most promising
    /// branches to refute first.
    pub fn hot_guard_bits(&self) -> u64 {
        self.buckets
            .values()
            .flatten()
            .fold(0, |acc, &(_, h, d)| acc | h | d)
    }

    /// Inserts a learned pattern, keeping the set subsumption-reduced.
    /// Returns `false` if an existing pattern already subsumes it (the
    /// caller should not count it as newly learned). `delta = 0` is
    /// rejected outright: it would claim *every* extension of `mask`
    /// prefixes infeasible, which the certificate never establishes.
    pub fn insert(&mut self, mask: u64, held: u64, delta: u64) -> bool {
        if delta == 0 {
            return false;
        }
        debug_assert_eq!(held & !mask, 0, "held guards must lie inside the mask");
        // Subsumed by an existing pattern? Its delta is a subset of
        // ours, so its lowest bit is one of our delta's bits.
        let mut bits = delta;
        while bits != 0 {
            let b = bits.trailing_zeros();
            if let Some(v) = self.buckets.get(&b) {
                if v.iter()
                    .any(|&(m, h, d)| mask & !m == 0 && h & !held == 0 && d & !delta == 0)
                {
                    return false;
                }
            }
            bits &= bits - 1;
        }
        // Evict patterns the new one subsumes. Their deltas are
        // supersets of ours, so their lowest bit is at or below ours.
        let tz = delta.trailing_zeros();
        for (&b, v) in self.buckets.iter_mut() {
            if b <= tz {
                let before = v.len();
                v.retain(|&(m, h, d)| !(m & !mask == 0 && held & !h == 0 && delta & !d == 0));
                self.len -= before - v.len();
            }
        }
        self.buckets
            .entry(tz)
            .or_default()
            .push((mask, held, delta));
        self.len += 1;
        true
    }

    /// Whether some pattern prunes an extension attempt: the prefix's
    /// final context is `prev`, and the step would newly unlock
    /// `newly`. True when a stored `(m, h, d)` has `h ⊆ prev ⊆ m` and
    /// `d ⊆ newly` — by monotonicity every earlier context of the
    /// prefix is also `⊆ m`, and every `h` guard, being unlocked in
    /// `prev`, still holds at the prefix's final boundary, so the
    /// attempt embeds the pattern.
    pub fn prunes(&self, prev: u64, newly: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let matches =
            |&(m, h, d): &(u64, u64, u64)| prev & !m == 0 && h & !prev == 0 && d & !newly == 0;
        // With fewer patterns than `newly` bits the per-bit bucket
        // lookups cost more than they save; scan the patterns directly.
        if self.len as u32 <= newly.count_ones() {
            return self.buckets.values().flatten().any(matches);
        }
        let mut bits = newly;
        while bits != 0 {
            let b = bits.trailing_zeros();
            if let Some(v) = self.buckets.get(&b) {
                if v.iter().any(matches) {
                    return true;
                }
            }
            bits &= bits - 1;
        }
        false
    }
}

/// A recorded exploration of one base encoding's schedule lattice.
#[derive(Debug)]
pub struct Exploration {
    key: ExplorationKey,
    /// Chain → feasible. Chains whose feasibility check returned
    /// `Unknown` are absent.
    verdicts: HashMap<Vec<u64>, bool>,
    /// Feasible chains in canonical (lexicographic = DFS preorder)
    /// order, for replay.
    feasible: Vec<Vec<u64>>,
    /// Core patterns learned while recording (sorted, deduplicated).
    /// They transfer under exactly the same [`ExplorationKey::prunes`]
    /// monotonicity as infeasible verdicts.
    cores: Vec<(u64, u64, u64)>,
    /// Whether the whole lattice was covered with definite verdicts
    /// (no cap, timeout, violation stop, or unknown). Only complete
    /// explorations may be replayed; incomplete ones still prune.
    complete: bool,
}

impl Exploration {
    /// The key this exploration was recorded under.
    pub fn key(&self) -> &ExplorationKey {
        &self.key
    }

    /// The recorded feasibility of `chain`, if any.
    pub fn verdict(&self, chain: &[u64]) -> Option<bool> {
        self.verdicts.get(chain).copied()
    }

    /// Feasible chains in replay order.
    pub fn feasible_chains(&self) -> &[Vec<u64>] {
        &self.feasible
    }

    /// Number of recorded infeasible chains.
    pub fn infeasible_count(&self) -> usize {
        self.verdicts.len() - self.feasible.len()
    }

    /// Core patterns learned while this exploration was recorded.
    pub fn cores(&self) -> &[(u64, u64, u64)] {
        &self.cores
    }

    /// Whether the exploration covers the whole lattice (replayable).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// A plain-data snapshot of this exploration, for checkpointing.
    pub fn snapshot(&self) -> ExplorationSnapshot {
        let mut infeasible: Vec<Vec<u64>> = self
            .verdicts
            .iter()
            .filter(|(_, &f)| !f)
            .map(|(c, _)| c.clone())
            .collect();
        infeasible.sort_unstable();
        ExplorationSnapshot {
            automaton: self.key.automaton,
            globally_empty: self.key.globally_empty.iter().map(|l| l.0).collect(),
            initially: self.key.initially.clone(),
            copies: self.key.copies,
            feasible: self.feasible.clone(),
            infeasible,
            cores: self.cores.clone(),
            complete: self.complete,
        }
    }

    /// Rebuilds an exploration from a checkpointed snapshot.
    pub fn from_snapshot(s: ExplorationSnapshot) -> Exploration {
        let key = ExplorationKey {
            automaton: s.automaton,
            globally_empty: s.globally_empty.into_iter().map(LocationId).collect(),
            initially: s.initially,
            copies: s.copies,
        };
        let mut verdicts = HashMap::with_capacity(s.feasible.len() + s.infeasible.len());
        for c in &s.feasible {
            verdicts.insert(c.clone(), true);
        }
        for c in s.infeasible {
            verdicts.insert(c, false);
        }
        let mut feasible = s.feasible;
        feasible.sort_unstable();
        let mut cores = s.cores;
        cores.sort_unstable();
        cores.dedup();
        Exploration {
            key,
            verdicts,
            feasible,
            cores,
            complete: s.complete,
        }
    }
}

/// A plain-data image of one [`Exploration`], decoupled from the
/// in-process representation so a supervisor can serialize it into a
/// versioned on-disk checkpoint and warm-start a resumed run's cache.
///
/// The automaton field is the in-process structural fingerprint; a
/// snapshot only round-trips within runs of the same binary over the
/// same models, which is exactly the checkpoint/resume contract.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExplorationSnapshot {
    /// Structural fingerprint of the automaton.
    pub automaton: u64,
    /// Indices of locations forced empty for the whole run (sorted).
    pub globally_empty: Vec<usize>,
    /// Canonical rendering of the `initially` proposition.
    pub initially: String,
    /// Segment copies pushed per context.
    pub copies: usize,
    /// Feasible chains in canonical order.
    pub feasible: Vec<Vec<u64>>,
    /// Infeasible chains in canonical order.
    pub infeasible: Vec<Vec<u64>>,
    /// Learned core patterns `(mask, held, delta)` in canonical order.
    pub cores: Vec<(u64, u64, u64)>,
    /// Whether the recording covers the whole lattice.
    pub complete: bool,
}

/// Accumulates `(chain, feasible)` verdicts during a DFS; workers each
/// hold their own recorder and the results are merged, so recording
/// order is irrelevant (finalization sorts canonically).
#[derive(Debug, Default)]
pub struct Recorder {
    nodes: Vec<(Vec<u64>, bool)>,
    /// Core patterns learned by this recorder's worker.
    cores: Vec<(u64, u64, u64)>,
    /// Set when a feasibility check returned `Unknown`: the node's
    /// verdict is missing, so the exploration cannot be complete.
    pub saw_unknown: bool,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Records a definite feasibility verdict for `chain`.
    pub fn record(&mut self, chain: &[u64], feasible: bool) {
        self.nodes.push((chain.to_vec(), feasible));
    }

    /// Records a learned core pattern `(mask, held, delta)` so it
    /// persists with the finished exploration (and through checkpoints).
    pub fn record_core(&mut self, mask: u64, held: u64, delta: u64) {
        self.cores.push((mask, held, delta));
    }

    /// Merges another recorder (e.g. a worker's) into this one.
    pub fn merge(&mut self, other: Recorder) {
        self.nodes.extend(other.nodes);
        self.cores.extend(other.cores);
        self.saw_unknown |= other.saw_unknown;
    }

    /// Builds the exploration. `covered` is whether the DFS ran to the
    /// end of the lattice (no cap/timeout/violation stop).
    pub fn finish(self, key: ExplorationKey, covered: bool) -> Exploration {
        let complete = covered && !self.saw_unknown;
        let mut verdicts = HashMap::with_capacity(self.nodes.len());
        for (chain, f) in self.nodes {
            verdicts.insert(chain, f);
        }
        let mut feasible: Vec<Vec<u64>> = verdicts
            .iter()
            .filter(|(_, &f)| f)
            .map(|(c, _)| c.clone())
            .collect();
        feasible.sort_unstable();
        let mut cores = self.cores;
        cores.sort_unstable();
        cores.dedup();
        Exploration {
            key,
            verdicts,
            feasible,
            cores,
            complete,
        }
    }
}

/// Every recorded exploration whose infeasible verdicts soundly
/// transfer to one query: the skeleton plus any property recording
/// whose banned-location set is contained in (overlaps from below) the
/// query's. Sources complement each other — each prunes the part of the
/// lattice *it* proved infeasible — so consulting all of them prunes
/// strictly more than the best single recording.
#[derive(Debug, Default)]
pub struct Pruner {
    sources: Vec<Arc<Exploration>>,
    /// Sources whose core patterns transfer
    /// ([`ExplorationKey::transfers_cores`]) — a superset of `sources`
    /// along the copies axis, since patterns are copies-independent.
    core_sources: Vec<Arc<Exploration>>,
    /// Sources whose *feasible* verdicts transfer
    /// ([`ExplorationKey::feeds_feasible`]): recorded under a
    /// stronger-or-equal base with no more copies.
    feasible_sources: Vec<Arc<Exploration>>,
}

impl Pruner {
    /// Whether any source recorded `chain` as infeasible. Feasible
    /// verdicts do **not** transfer (a weaker base can only over-, not
    /// under-approximate feasibility), so this is the only question a
    /// pruner answers; the answer is independent of source order.
    pub fn prunes_chain(&self, chain: &[u64]) -> bool {
        self.sources.iter().any(|e| e.verdict(chain) == Some(false))
    }

    /// Whether any source recorded under a stronger-or-equal base with
    /// no more copies recorded `chain` as feasible: its witness run
    /// transfers verbatim (see [`ExplorationKey::feeds_feasible`]), so
    /// the chain is feasible here without an SMT check. Sound in
    /// exactly the opposite direction from `prunes_chain` — the two can
    /// never both answer for one chain.
    pub fn feasible_chain(&self, chain: &[u64]) -> bool {
        self.feasible_sources
            .iter()
            .any(|e| e.verdict(chain) == Some(true))
    }

    /// Number of contributing recordings.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// All core patterns carried by the core sources,
    /// subsumption-reduced. Every source was recorded under a
    /// weaker-or-equal base, so a certificate's members (resilience,
    /// init distribution, availability, entry/held guard) are all
    /// present in the target encoding; segment copies don't matter
    /// because the certified probe system collapses any number of
    /// segments into one ([`ExplorationKey::transfers_cores`]).
    pub fn core_patterns(&self) -> CorePatternSet {
        let mut set = CorePatternSet::new();
        for e in &self.core_sources {
            for &(m, h, d) in e.cores() {
                set.insert(m, h, d);
            }
        }
        set
    }
}

/// Number of lock stripes. Matrix-scheduled properties of different
/// automata hash to different stripes, so concurrent whole-property
/// jobs don't serialize on one cache lock.
const SHARDS: usize = 8;

/// The process-wide store, shared by all clones of a
/// [`Checker`](crate::Checker) (clones share the same `Arc`).
/// Lock-striped: keys are distributed over [`SHARDS`] independent
/// mutexes by hash, so the matrix scheduler's concurrent property jobs
/// contend only when they touch the same stripe.
#[derive(Debug)]
pub struct ExplorationCache {
    shards: Vec<Mutex<HashMap<ExplorationKey, Arc<Exploration>>>>,
}

impl Default for ExplorationCache {
    fn default() -> ExplorationCache {
        ExplorationCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl ExplorationCache {
    /// A fresh, empty cache.
    pub fn new() -> ExplorationCache {
        ExplorationCache::default()
    }

    fn shard(&self, key: &ExplorationKey) -> &Mutex<HashMap<ExplorationKey, Arc<Exploration>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// A complete exploration recorded under exactly `key`, if any.
    pub fn replayable(&self, key: &ExplorationKey) -> Option<Arc<Exploration>> {
        let hit = self
            .shard(key)
            .lock()
            .unwrap()
            .get(key)
            .filter(|e| e.is_complete())
            .cloned();
        if hit.is_some() {
            holistic_obs::add("cache.replay_hit", 1);
        } else {
            holistic_obs::add("cache.replay_miss", 1);
        }
        hit
    }

    /// All recorded explorations whose infeasible verdicts soundly
    /// prune a query keyed `key`, aggregated (see [`Pruner`]). `None`
    /// if nothing recorded applies.
    pub fn pruner_for(&self, key: &ExplorationKey) -> Option<Pruner> {
        let mut sources: Vec<Arc<Exploration>> = Vec::new();
        let mut core_sources: Vec<Arc<Exploration>> = Vec::new();
        let mut feasible_sources: Vec<Arc<Exploration>> = Vec::new();
        for shard in &self.shards {
            for e in shard.lock().unwrap().values() {
                if e.key().prunes(key) {
                    sources.push(e.clone());
                }
                if e.key().transfers_cores(key) {
                    core_sources.push(e.clone());
                }
                if e.key().feeds_feasible(key) {
                    feasible_sources.push(e.clone());
                }
            }
        }
        if sources.is_empty() && core_sources.is_empty() && feasible_sources.is_empty() {
            holistic_obs::add("cache.pruner_miss", 1);
            None
        } else {
            holistic_obs::add("cache.pruner_hit", 1);
            Some(Pruner {
                sources,
                core_sources,
                feasible_sources,
            })
        }
    }

    /// Stores an exploration. A complete recording is never replaced by
    /// an incomplete one.
    pub fn insert(&self, e: Exploration) {
        holistic_obs::add("cache.inserts", 1);
        let mut map = self.shard(&e.key).lock().unwrap();
        match map.get(&e.key) {
            Some(old) if old.is_complete() && !e.is_complete() => {}
            _ => {
                map.insert(e.key.clone(), Arc::new(e));
            }
        }
    }

    /// All learned core patterns recorded for `ta`, aggregated over
    /// every base encoding and subsumption-reduced, in canonical
    /// order. Diagnostic surface for `--explain-prunes`.
    pub fn cores_for(&self, ta: &ThresholdAutomaton) -> Vec<(u64, u64, u64)> {
        let fp = fingerprint(ta);
        let mut set = CorePatternSet::new();
        for shard in &self.shards {
            for e in shard.lock().unwrap().values() {
                if e.key.automaton == fp {
                    for &(m, h, d) in e.cores() {
                        set.insert(m, h, d);
                    }
                }
            }
        }
        set.patterns()
    }

    /// Snapshots every recorded exploration, in a deterministic order
    /// (sorted by key rendering), for checkpointing.
    pub fn export(&self) -> Vec<ExplorationSnapshot> {
        let mut out: Vec<ExplorationSnapshot> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().values().map(|e| e.snapshot()));
        }
        out.sort_unstable_by(|a, b| {
            (a.automaton, &a.globally_empty, &a.initially, a.copies).cmp(&(
                b.automaton,
                &b.globally_empty,
                &b.initially,
                b.copies,
            ))
        });
        out
    }

    /// Restores snapshots into the cache (e.g. on `--resume`), keeping
    /// the usual complete-over-incomplete preference.
    pub fn import(&self, snapshots: Vec<ExplorationSnapshot>) {
        for s in snapshots {
            self.insert(Exploration::from_snapshot(s));
        }
    }

    /// Number of recorded explorations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ge: &[usize], init: &Prop, copies: usize) -> ExplorationKey {
        ExplorationKey {
            automaton: 42,
            globally_empty: ge.iter().map(|&i| LocationId(i)).collect(),
            initially: format!("{init:?}"),
            copies,
        }
    }

    #[test]
    fn skeleton_prunes_everything_at_lower_or_equal_copies() {
        let strong = key(&[0, 3], &Prop::loc_empty(LocationId(1)), 1);
        let skel = strong.skeleton();
        assert!(skel.is_skeleton());
        assert!(skel.prunes(&strong));
        assert!(skel.prunes(&skel.clone()));
        // More copies than recorded: not sound.
        let more = key(&[], &Prop::True, 2);
        assert!(!skel.prunes(&more));
        // Fewer copies than recorded: sound.
        let skel2 = more.skeleton();
        assert!(skel2.prunes(&strong));
    }

    #[test]
    fn stronger_base_does_not_prune_weaker() {
        let strong = key(&[0], &Prop::True, 1);
        let weak = key(&[], &Prop::True, 1);
        assert!(!strong.prunes(&weak));
        assert!(weak.prunes(&strong));
    }

    #[test]
    fn core_transfer_is_copies_independent() {
        // Core patterns argue over probe aggregates, never over the
        // number of per-segment copies: a weaker-or-equal base donates
        // its patterns to any copies count.
        let donor = key(&[0], &Prop::True, 1);
        let taker = key(&[0, 3], &Prop::loc_empty(LocationId(1)), 4);
        assert!(donor.transfers_cores(&taker));
        let fewer = key(&[0], &Prop::True, 2);
        assert!(donor.transfers_cores(&fewer));
        // Trivial `initially` also transfers to a constrained one...
        let trivial = key(&[], &Prop::True, 1);
        assert!(trivial.transfers_cores(&taker));
        // ...but a *stronger* base must not donate to a weaker target.
        assert!(!taker.transfers_cores(&donor));
        let other_init = key(&[0], &Prop::loc_empty(LocationId(2)), 1);
        assert!(
            !other_init.transfers_cores(&taker),
            "incomparable initially"
        );
        let mut foreign = donor.clone();
        foreign.automaton = 7;
        assert!(!foreign.transfers_cores(&taker), "different automaton");
    }

    #[test]
    fn feasible_verdicts_transfer_upward_in_copies_only() {
        // A feasible chain recorded at k copies shifts its factors into
        // the last copy of any wider query — but never narrows.
        let donor = key(&[0, 3], &Prop::True, 1);
        let wider = key(&[0], &Prop::True, 3);
        assert!(donor.feeds_feasible(&wider));
        assert!(donor.feeds_feasible(&donor.clone()));
        let narrower = key(&[0], &Prop::True, 1);
        let at_two = key(&[0, 3], &Prop::True, 2);
        assert!(!at_two.feeds_feasible(&narrower), "downward is unsound");
        // The donor's base must be stronger-or-equal: its feasible
        // witnesses satisfy every constraint the target imposes.
        let weak_donor = key(&[], &Prop::True, 1);
        assert!(
            !weak_donor.feeds_feasible(&wider),
            "donor weaker than target"
        );
        let init_donor = key(&[0], &Prop::loc_empty(LocationId(1)), 1);
        let trivial_target = key(&[0], &Prop::True, 2);
        assert!(
            init_donor.feeds_feasible(&trivial_target),
            "constrained initially feeds a trivial target"
        );
        assert!(
            !narrower.feeds_feasible(&key(&[0], &Prop::loc_empty(LocationId(1)), 2)),
            "trivial initially must not feed a constrained target"
        );
    }

    #[test]
    fn base_is_the_single_copy_skeleton() {
        let k = key(&[0, 3], &Prop::loc_empty(LocationId(1)), 4);
        let base = k.base();
        assert!(base.is_skeleton());
        assert_eq!(base.copies, 1);
        // Core patterns donate to every key of the automaton; chain
        // verdicts prune single-copy queries and feed skeleton queries
        // upward.
        assert!(base.transfers_cores(&k));
        assert!(base.prunes(&key(&[0], &Prop::True, 1)));
        assert!(base.feeds_feasible(&key(&[], &Prop::True, 4)));
        assert!(
            !base.feeds_feasible(&k),
            "a skeleton witness need not satisfy a constrained base"
        );
        // Idempotent.
        assert_eq!(base.base(), base);
    }

    #[test]
    fn recorder_canonical_order_is_scheduling_independent() {
        let k = key(&[], &Prop::True, 1);
        let mut a = Recorder::new();
        a.record(&[0, 3], true);
        a.record(&[0], true);
        let mut b = Recorder::new();
        b.record(&[0, 1], true);
        b.record(&[0, 1, 3], false);
        // Merge in "wrong" order; finish() canonicalizes.
        let mut merged = Recorder::new();
        merged.merge(b);
        merged.merge(a);
        let e = merged.finish(k, true);
        assert!(e.is_complete());
        assert_eq!(
            e.feasible_chains(),
            &[vec![0], vec![0, 1], vec![0, 3]],
            "lexicographic = DFS preorder"
        );
        assert_eq!(e.verdict(&[0, 1, 3]), Some(false));
        assert_eq!(e.verdict(&[9]), None);
        assert_eq!(e.infeasible_count(), 1);
    }

    #[test]
    fn unknown_or_uncovered_explorations_are_not_replayable() {
        let k = key(&[], &Prop::True, 1);
        let mut r = Recorder::new();
        r.record(&[0], true);
        r.saw_unknown = true;
        assert!(!r.finish(k.clone(), true).is_complete());
        let mut r = Recorder::new();
        r.record(&[0], true);
        assert!(!r.finish(k, false).is_complete());
    }

    #[test]
    fn core_pattern_set_subsumption_and_matching() {
        let mut s = CorePatternSet::new();
        assert!(!s.insert(0b1, 0, 0)); // delta 0 rejected
        assert!(s.insert(0b011, 0, 0b100));
        assert_eq!(s.len(), 1);
        // Subsumed: smaller mask, larger delta.
        assert!(!s.insert(0b001, 0, 0b110));
        assert_eq!(s.len(), 1);
        // Subsumed: same mask/delta, more demanding held set.
        assert!(!s.insert(0b011, 0b001, 0b100));
        assert_eq!(s.len(), 1);
        // Subsumes the stored pattern: larger mask, same delta.
        assert!(s.insert(0b111, 0, 0b100));
        assert_eq!(s.len(), 1);
        assert_eq!(s.patterns(), vec![(0b111, 0, 0b100)]);
        // Incomparable pattern coexists.
        assert!(s.insert(0b1000, 0, 0b10));
        assert_eq!(s.len(), 2);

        // (0b111, 0, 0b100) prunes: prev ⊆ 0b111 and 0b100 ⊆ newly.
        assert!(s.prunes(0b011, 0b100));
        assert!(s.prunes(0, 0b1100));
        assert!(!s.prunes(0b1011, 0b100), "prev outside mask");
        assert!(!s.prunes(0b011, 0b011), "delta not newly unlocked");
        // The second pattern.
        assert!(s.prunes(0b1000, 0b110));
        assert!(!s.prunes(0b0100, 0b010), "prev outside second mask");
    }

    #[test]
    fn held_conditioned_patterns_require_held_in_prev() {
        let mut s = CorePatternSet::new();
        assert!(s.insert(0b111, 0b010, 0b1000));
        // Matching needs held ⊆ prev ⊆ mask.
        assert!(s.prunes(0b011, 0b1000));
        assert!(s.prunes(0b111, 0b1100));
        assert!(!s.prunes(0b001, 0b1000), "held guard not unlocked in prev");
        assert!(!s.prunes(0b1010, 0b1000), "prev outside mask");

        // A held-free pattern with the same mask/delta subsumes it.
        assert!(s.insert(0b111, 0, 0b1000));
        assert_eq!(s.len(), 1);
        assert_eq!(s.patterns(), vec![(0b111, 0, 0b1000)]);
        assert!(s.prunes(0b001, 0b1000));

        // The direct-scan fast path (fewer patterns than newly bits)
        // agrees with the bucketed path.
        assert!(s.prunes(0b001, 0b11111000));
        assert!(!s.prunes(0b001, 0b110));
    }

    #[test]
    fn cores_survive_merge_finish_and_snapshot_round_trip() {
        let k = key(&[], &Prop::True, 1);
        let mut a = Recorder::new();
        a.record(&[0b1], true);
        a.record_core(0b1, 0, 0b10);
        let mut b = Recorder::new();
        b.record(&[0b1, 0b11], false);
        b.record_core(0b1, 0, 0b10); // duplicate across workers
        b.record_core(0b11, 0b1, 0b100);
        let mut merged = Recorder::new();
        merged.merge(a);
        merged.merge(b);
        let e = merged.finish(k, true);
        assert_eq!(e.cores(), &[(0b1, 0, 0b10), (0b11, 0b1, 0b100)]);
        let snap = e.snapshot();
        assert_eq!(snap.cores, vec![(0b1, 0, 0b10), (0b11, 0b1, 0b100)]);
        let back = Exploration::from_snapshot(snap);
        assert_eq!(back.cores(), e.cores());

        // A pruner over this source exposes the patterns.
        let cache = ExplorationCache::new();
        cache.insert(back);
        let strong = key(&[7], &Prop::loc_empty(LocationId(7)), 1);
        let pruner = cache.pruner_for(&strong).expect("skeleton source applies");
        let pats = pruner.core_patterns();
        assert_eq!(pats.len(), 2);
        assert!(pats.prunes(0b1, 0b10));
    }

    #[test]
    fn cache_prefers_complete_recordings() {
        let cache = ExplorationCache::new();
        let k = key(&[], &Prop::True, 1);
        let mut r = Recorder::new();
        r.record(&[0], true);
        cache.insert(r.finish(k.clone(), true));
        assert!(cache.replayable(&k).is_some());
        // An incomplete re-recording must not clobber it.
        let mut r = Recorder::new();
        r.record(&[0], true);
        cache.insert(r.finish(k.clone(), false));
        assert!(cache.replayable(&k).is_some());
        assert_eq!(cache.len(), 1);
    }
}
