//! Cross-property schema exploration cache.
//!
//! Holistic verification checks *many* properties of the *same*
//! automaton (the paper's Table 2 runs nine properties over three
//! automata). The schedule DFS of [`Checker`](crate::Checker) spends
//! most of its time discovering, per property, which context chains
//! are feasible — but feasibility of a chain depends only on the *base
//! encoding* (automaton, globally-empty locations, initial-state
//! proposition, segment copies), not on the property's witness or tail
//! constraints, which live in a separate solver scope. This module
//! memoizes that discovery so the lattice is explored once per base
//! encoding and *replayed* for every later property.
//!
//! Three levels of reuse, strongest first:
//!
//! 1. **Replay** — a later query with the *same* [`ExplorationKey`]
//!    skips feasibility checks entirely: the recorded feasible chains
//!    are walked in canonical order and only the per-property query
//!    check runs on each.
//! 2. **Pruning** — a recorded exploration under a *weaker* base (fewer
//!    globally-empty locations, trivial `initially`, at least as many
//!    copies) soundly transfers its *infeasible* verdicts: removing
//!    constraints can only grow the feasible set, and extra segment
//!    copies can only make more chains feasible (surplus factors are
//!    zeroable), so "infeasible under the weaker base" implies
//!    "infeasible here".
//! 3. **Skeleton** — when nothing recorded matches, the checker first
//!    explores the weakest base of the automaton (`initially = True`,
//!    no globally-empty locations) without any query checks and records
//!    it; every subsequent property of the automaton then prunes
//!    against it. This is what guarantees nonzero cache-hit counters
//!    for every property after the first.
//!
//! Verdicts are stored per *chain* (the strictly increasing context
//! sequence identifying a lattice node) in canonical lexicographic
//! order, which equals DFS preorder when children are visited in
//! ascending context order — so a recording assembled from parallel
//! workers in any completion order still replays deterministically.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, Mutex};

use holistic_ltl::Prop;
use holistic_ta::{LocationId, ThresholdAutomaton};

/// Everything that determines per-chain feasibility of the schedule
/// DFS's base encoding. Two queries with equal keys have identical
/// feasible frontiers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExplorationKey {
    /// Structural fingerprint of the automaton.
    automaton: u64,
    /// Locations forced empty for the whole run (sorted).
    globally_empty: Vec<LocationId>,
    /// Canonical rendering of the `initially` proposition.
    initially: String,
    /// Segment copies pushed per context (1 + unstable witnesses).
    copies: usize,
}

/// Fingerprints an automaton's structure (locations, variables, rules,
/// resilience). In-process only: the cache never outlives the run, so a
/// deterministic hash of the debug rendering suffices.
fn fingerprint(ta: &ThresholdAutomaton) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{ta:?}").hash(&mut h);
    h.finish()
}

impl ExplorationKey {
    /// The key for a query's base encoding.
    pub fn new(
        ta: &ThresholdAutomaton,
        globally_empty: &[LocationId],
        initially: &Prop,
        copies: usize,
    ) -> ExplorationKey {
        let mut ge = globally_empty.to_vec();
        ge.sort_unstable();
        ge.dedup();
        ExplorationKey {
            automaton: fingerprint(ta),
            globally_empty: ge,
            initially: format!("{initially:?}"),
            copies,
        }
    }

    /// The weakest base of the same automaton at the same copies: no
    /// globally-empty locations, trivial `initially`.
    pub fn skeleton(&self) -> ExplorationKey {
        ExplorationKey {
            automaton: self.automaton,
            globally_empty: Vec::new(),
            initially: format!("{:?}", Prop::True),
            copies: self.copies,
        }
    }

    /// Whether this key already *is* its own skeleton.
    pub fn is_skeleton(&self) -> bool {
        self.globally_empty.is_empty() && self.initially == format!("{:?}", Prop::True)
    }

    /// Whether an exploration recorded under `self` soundly transfers
    /// its *infeasible* verdicts to a query keyed `other`:
    /// same automaton, weaker-or-equal constraints, at least as many
    /// copies.
    pub fn prunes(&self, other: &ExplorationKey) -> bool {
        self.automaton == other.automaton
            && self.copies >= other.copies
            && (self.initially == other.initially || self.initially == format!("{:?}", Prop::True))
            && self
                .globally_empty
                .iter()
                .all(|l| other.globally_empty.contains(l))
    }
}

/// A recorded exploration of one base encoding's schedule lattice.
#[derive(Debug)]
pub struct Exploration {
    key: ExplorationKey,
    /// Chain → feasible. Chains whose feasibility check returned
    /// `Unknown` are absent.
    verdicts: HashMap<Vec<u64>, bool>,
    /// Feasible chains in canonical (lexicographic = DFS preorder)
    /// order, for replay.
    feasible: Vec<Vec<u64>>,
    /// Whether the whole lattice was covered with definite verdicts
    /// (no cap, timeout, violation stop, or unknown). Only complete
    /// explorations may be replayed; incomplete ones still prune.
    complete: bool,
}

impl Exploration {
    /// The key this exploration was recorded under.
    pub fn key(&self) -> &ExplorationKey {
        &self.key
    }

    /// The recorded feasibility of `chain`, if any.
    pub fn verdict(&self, chain: &[u64]) -> Option<bool> {
        self.verdicts.get(chain).copied()
    }

    /// Feasible chains in replay order.
    pub fn feasible_chains(&self) -> &[Vec<u64>] {
        &self.feasible
    }

    /// Number of recorded infeasible chains.
    pub fn infeasible_count(&self) -> usize {
        self.verdicts.len() - self.feasible.len()
    }

    /// Whether the exploration covers the whole lattice (replayable).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// A plain-data snapshot of this exploration, for checkpointing.
    pub fn snapshot(&self) -> ExplorationSnapshot {
        let mut infeasible: Vec<Vec<u64>> = self
            .verdicts
            .iter()
            .filter(|(_, &f)| !f)
            .map(|(c, _)| c.clone())
            .collect();
        infeasible.sort_unstable();
        ExplorationSnapshot {
            automaton: self.key.automaton,
            globally_empty: self.key.globally_empty.iter().map(|l| l.0).collect(),
            initially: self.key.initially.clone(),
            copies: self.key.copies,
            feasible: self.feasible.clone(),
            infeasible,
            complete: self.complete,
        }
    }

    /// Rebuilds an exploration from a checkpointed snapshot.
    pub fn from_snapshot(s: ExplorationSnapshot) -> Exploration {
        let key = ExplorationKey {
            automaton: s.automaton,
            globally_empty: s.globally_empty.into_iter().map(LocationId).collect(),
            initially: s.initially,
            copies: s.copies,
        };
        let mut verdicts = HashMap::with_capacity(s.feasible.len() + s.infeasible.len());
        for c in &s.feasible {
            verdicts.insert(c.clone(), true);
        }
        for c in s.infeasible {
            verdicts.insert(c, false);
        }
        let mut feasible = s.feasible;
        feasible.sort_unstable();
        Exploration {
            key,
            verdicts,
            feasible,
            complete: s.complete,
        }
    }
}

/// A plain-data image of one [`Exploration`], decoupled from the
/// in-process representation so a supervisor can serialize it into a
/// versioned on-disk checkpoint and warm-start a resumed run's cache.
///
/// The automaton field is the in-process structural fingerprint; a
/// snapshot only round-trips within runs of the same binary over the
/// same models, which is exactly the checkpoint/resume contract.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExplorationSnapshot {
    /// Structural fingerprint of the automaton.
    pub automaton: u64,
    /// Indices of locations forced empty for the whole run (sorted).
    pub globally_empty: Vec<usize>,
    /// Canonical rendering of the `initially` proposition.
    pub initially: String,
    /// Segment copies pushed per context.
    pub copies: usize,
    /// Feasible chains in canonical order.
    pub feasible: Vec<Vec<u64>>,
    /// Infeasible chains in canonical order.
    pub infeasible: Vec<Vec<u64>>,
    /// Whether the recording covers the whole lattice.
    pub complete: bool,
}

/// Accumulates `(chain, feasible)` verdicts during a DFS; workers each
/// hold their own recorder and the results are merged, so recording
/// order is irrelevant (finalization sorts canonically).
#[derive(Debug, Default)]
pub struct Recorder {
    nodes: Vec<(Vec<u64>, bool)>,
    /// Set when a feasibility check returned `Unknown`: the node's
    /// verdict is missing, so the exploration cannot be complete.
    pub saw_unknown: bool,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Records a definite feasibility verdict for `chain`.
    pub fn record(&mut self, chain: &[u64], feasible: bool) {
        self.nodes.push((chain.to_vec(), feasible));
    }

    /// Merges another recorder (e.g. a worker's) into this one.
    pub fn merge(&mut self, other: Recorder) {
        self.nodes.extend(other.nodes);
        self.saw_unknown |= other.saw_unknown;
    }

    /// Builds the exploration. `covered` is whether the DFS ran to the
    /// end of the lattice (no cap/timeout/violation stop).
    pub fn finish(self, key: ExplorationKey, covered: bool) -> Exploration {
        let complete = covered && !self.saw_unknown;
        let mut verdicts = HashMap::with_capacity(self.nodes.len());
        for (chain, f) in self.nodes {
            verdicts.insert(chain, f);
        }
        let mut feasible: Vec<Vec<u64>> = verdicts
            .iter()
            .filter(|(_, &f)| f)
            .map(|(c, _)| c.clone())
            .collect();
        feasible.sort_unstable();
        Exploration {
            key,
            verdicts,
            feasible,
            complete,
        }
    }
}

/// Every recorded exploration whose infeasible verdicts soundly
/// transfer to one query: the skeleton plus any property recording
/// whose banned-location set is contained in (overlaps from below) the
/// query's. Sources complement each other — each prunes the part of the
/// lattice *it* proved infeasible — so consulting all of them prunes
/// strictly more than the best single recording.
#[derive(Debug, Default)]
pub struct Pruner {
    sources: Vec<Arc<Exploration>>,
}

impl Pruner {
    /// Whether any source recorded `chain` as infeasible. Feasible
    /// verdicts do **not** transfer (a weaker base can only over-, not
    /// under-approximate feasibility), so this is the only question a
    /// pruner answers; the answer is independent of source order.
    pub fn prunes_chain(&self, chain: &[u64]) -> bool {
        self.sources.iter().any(|e| e.verdict(chain) == Some(false))
    }

    /// Number of contributing recordings.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }
}

/// Number of lock stripes. Matrix-scheduled properties of different
/// automata hash to different stripes, so concurrent whole-property
/// jobs don't serialize on one cache lock.
const SHARDS: usize = 8;

/// The process-wide store, shared by all clones of a
/// [`Checker`](crate::Checker) (clones share the same `Arc`).
/// Lock-striped: keys are distributed over [`SHARDS`] independent
/// mutexes by hash, so the matrix scheduler's concurrent property jobs
/// contend only when they touch the same stripe.
#[derive(Debug)]
pub struct ExplorationCache {
    shards: Vec<Mutex<HashMap<ExplorationKey, Arc<Exploration>>>>,
}

impl Default for ExplorationCache {
    fn default() -> ExplorationCache {
        ExplorationCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl ExplorationCache {
    /// A fresh, empty cache.
    pub fn new() -> ExplorationCache {
        ExplorationCache::default()
    }

    fn shard(&self, key: &ExplorationKey) -> &Mutex<HashMap<ExplorationKey, Arc<Exploration>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// A complete exploration recorded under exactly `key`, if any.
    pub fn replayable(&self, key: &ExplorationKey) -> Option<Arc<Exploration>> {
        self.shard(key)
            .lock()
            .unwrap()
            .get(key)
            .filter(|e| e.is_complete())
            .cloned()
    }

    /// All recorded explorations whose infeasible verdicts soundly
    /// prune a query keyed `key`, aggregated (see [`Pruner`]). `None`
    /// if nothing recorded applies.
    pub fn pruner_for(&self, key: &ExplorationKey) -> Option<Pruner> {
        let mut sources: Vec<Arc<Exploration>> = Vec::new();
        for shard in &self.shards {
            sources.extend(
                shard
                    .lock()
                    .unwrap()
                    .values()
                    .filter(|e| e.key().prunes(key))
                    .cloned(),
            );
        }
        if sources.is_empty() {
            None
        } else {
            Some(Pruner { sources })
        }
    }

    /// Stores an exploration. A complete recording is never replaced by
    /// an incomplete one.
    pub fn insert(&self, e: Exploration) {
        let mut map = self.shard(&e.key).lock().unwrap();
        match map.get(&e.key) {
            Some(old) if old.is_complete() && !e.is_complete() => {}
            _ => {
                map.insert(e.key.clone(), Arc::new(e));
            }
        }
    }

    /// Snapshots every recorded exploration, in a deterministic order
    /// (sorted by key rendering), for checkpointing.
    pub fn export(&self) -> Vec<ExplorationSnapshot> {
        let mut out: Vec<ExplorationSnapshot> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().values().map(|e| e.snapshot()));
        }
        out.sort_unstable_by(|a, b| {
            (a.automaton, &a.globally_empty, &a.initially, a.copies).cmp(&(
                b.automaton,
                &b.globally_empty,
                &b.initially,
                b.copies,
            ))
        });
        out
    }

    /// Restores snapshots into the cache (e.g. on `--resume`), keeping
    /// the usual complete-over-incomplete preference.
    pub fn import(&self, snapshots: Vec<ExplorationSnapshot>) {
        for s in snapshots {
            self.insert(Exploration::from_snapshot(s));
        }
    }

    /// Number of recorded explorations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ge: &[usize], init: &Prop, copies: usize) -> ExplorationKey {
        ExplorationKey {
            automaton: 42,
            globally_empty: ge.iter().map(|&i| LocationId(i)).collect(),
            initially: format!("{init:?}"),
            copies,
        }
    }

    #[test]
    fn skeleton_prunes_everything_at_lower_or_equal_copies() {
        let strong = key(&[0, 3], &Prop::loc_empty(LocationId(1)), 1);
        let skel = strong.skeleton();
        assert!(skel.is_skeleton());
        assert!(skel.prunes(&strong));
        assert!(skel.prunes(&skel.clone()));
        // More copies than recorded: not sound.
        let more = key(&[], &Prop::True, 2);
        assert!(!skel.prunes(&more));
        // Fewer copies than recorded: sound.
        let skel2 = more.skeleton();
        assert!(skel2.prunes(&strong));
    }

    #[test]
    fn stronger_base_does_not_prune_weaker() {
        let strong = key(&[0], &Prop::True, 1);
        let weak = key(&[], &Prop::True, 1);
        assert!(!strong.prunes(&weak));
        assert!(weak.prunes(&strong));
    }

    #[test]
    fn recorder_canonical_order_is_scheduling_independent() {
        let k = key(&[], &Prop::True, 1);
        let mut a = Recorder::new();
        a.record(&[0, 3], true);
        a.record(&[0], true);
        let mut b = Recorder::new();
        b.record(&[0, 1], true);
        b.record(&[0, 1, 3], false);
        // Merge in "wrong" order; finish() canonicalizes.
        let mut merged = Recorder::new();
        merged.merge(b);
        merged.merge(a);
        let e = merged.finish(k, true);
        assert!(e.is_complete());
        assert_eq!(
            e.feasible_chains(),
            &[vec![0], vec![0, 1], vec![0, 3]],
            "lexicographic = DFS preorder"
        );
        assert_eq!(e.verdict(&[0, 1, 3]), Some(false));
        assert_eq!(e.verdict(&[9]), None);
        assert_eq!(e.infeasible_count(), 1);
    }

    #[test]
    fn unknown_or_uncovered_explorations_are_not_replayable() {
        let k = key(&[], &Prop::True, 1);
        let mut r = Recorder::new();
        r.record(&[0], true);
        r.saw_unknown = true;
        assert!(!r.finish(k.clone(), true).is_complete());
        let mut r = Recorder::new();
        r.record(&[0], true);
        assert!(!r.finish(k, false).is_complete());
    }

    #[test]
    fn cache_prefers_complete_recordings() {
        let cache = ExplorationCache::new();
        let k = key(&[], &Prop::True, 1);
        let mut r = Recorder::new();
        r.record(&[0], true);
        cache.insert(r.finish(k.clone(), true));
        assert!(cache.replayable(&k).is_some());
        // An incomplete re-recording must not clobber it.
        let mut r = Recorder::new();
        r.record(&[0], true);
        cache.insert(r.finish(k.clone(), false));
        assert!(cache.replayable(&k).is_some());
        assert_eq!(cache.len(), 1);
    }
}
