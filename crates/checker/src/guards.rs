//! Guard analysis: the unique threshold guards of an automaton, which
//! of them can hold initially, and the implication order between them.
//!
//! Contexts (sets of unlocked guards) must be closed under implication:
//! if `g ⇒ h` is valid under the resilience condition, no reachable
//! configuration satisfies `g` but not `h`, so context sequences that
//! violate closure are pruned before any SMT query is made. For the
//! bv-broadcast automaton this is what orders the two thresholds on the
//! same variable (`b0 ≥ 2t+1−f` implies `b0 ≥ t+1−f` whenever `t ≥ 0`).

use holistic_lia::{Constraint, LinExpr, Solver, Var};
use holistic_ta::{AtomicGuard, GuardCmp, ParamExpr, ThresholdAutomaton};

/// The guard vocabulary of an automaton, with derived facts.
#[derive(Debug)]
pub struct GuardInfo {
    /// The distinct rise guards, in first-occurrence order. Index into
    /// this vector is the *guard index* used by context bitmasks.
    pub guards: Vec<AtomicGuard>,
    /// `implies[g]` = bitmask of guards entailed by `g` (excluding `g`).
    pub implies: Vec<u64>,
    /// Bitmask of guards that can be true in the initial configuration
    /// (all shared variables zero) for some admissible parameters.
    pub initially_possible: u64,
    /// For each updating rule (deduplicated): `(needs, raises)` — the
    /// guard bitmask the rule itself needs, and the bitmask of guards
    /// whose left-hand side it increments. Because exactly one rule
    /// fires per step of the interleaving semantics, a set `T` of guards
    /// can unlock *simultaneously* after a segment with context `C` only
    /// if some rule with `needs ⊆ C` has `T ⊆ raises` (the static
    /// extension filter of the schedule DFS).
    pub raisers: Vec<(u64, u64)>,
}

/// Errors from guard analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GuardError {
    /// The automaton uses a fall guard (`<`), which is outside the
    /// increment-only rise-guard class this checker supports.
    FallGuard(String),
    /// More than 64 distinct guards (context bitmasks are `u64`).
    TooManyGuards(usize),
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::FallGuard(r) => {
                write!(
                    f,
                    "rule {r} has a fall guard (<); only rise guards are supported"
                )
            }
            GuardError::TooManyGuards(n) => write!(f, "{n} distinct guards exceed the limit of 64"),
        }
    }
}

impl std::error::Error for GuardError {}

/// Builds a solver over the automaton's parameters with the resilience
/// condition asserted; returns the parameter variables.
pub(crate) fn param_solver(ta: &ThresholdAutomaton) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let params: Vec<Var> = ta
        .params
        .iter()
        .map(|p| solver.new_nonneg_var(p.clone()))
        .collect();
    for c in &ta.resilience {
        solver.assert_constraint(resilience_constraint(c, &params));
    }
    (solver, params)
}

pub(crate) fn param_expr_to_lin(e: &ParamExpr, params: &[Var]) -> LinExpr {
    let mut out = LinExpr::constant(e.constant_term() as i128);
    for (p, c) in e.iter() {
        out.add_term(params[p.0], c);
    }
    out
}

pub(crate) fn resilience_constraint(
    c: &holistic_ta::ParamConstraint,
    params: &[Var],
) -> Constraint {
    let lhs = param_expr_to_lin(&c.lhs, params);
    let rhs = param_expr_to_lin(&c.rhs, params);
    match c.cmp {
        holistic_ta::ParamCmp::Gt => Constraint::gt(lhs, rhs),
        holistic_ta::ParamCmp::Ge => Constraint::ge(lhs, rhs),
        holistic_ta::ParamCmp::Eq => Constraint::eq(lhs, rhs),
        holistic_ta::ParamCmp::Le => Constraint::le(lhs, rhs),
        holistic_ta::ParamCmp::Lt => Constraint::lt(lhs, rhs),
    }
}

impl GuardInfo {
    /// Analyses the automaton's guards.
    ///
    /// # Errors
    ///
    /// [`GuardError`] if the automaton uses fall guards or has more than
    /// 64 distinct guards.
    pub fn analyse(ta: &ThresholdAutomaton) -> Result<GuardInfo, GuardError> {
        GuardInfo::analyse_with_extra(ta, &[])
    }

    /// Analyses the automaton's guards plus `extra` threshold atoms
    /// (typically the atoms appearing in the property and the justice
    /// assumption), so that schema contexts determine their truth too.
    ///
    /// # Errors
    ///
    /// See [`analyse`](GuardInfo::analyse).
    pub fn analyse_with_extra(
        ta: &ThresholdAutomaton,
        extra: &[AtomicGuard],
    ) -> Result<GuardInfo, GuardError> {
        for rule in &ta.rules {
            for atom in rule.guard.atoms() {
                if atom.cmp == GuardCmp::Lt {
                    return Err(GuardError::FallGuard(rule.name.clone()));
                }
            }
        }
        let mut guards = ta.unique_guards();
        for atom in extra {
            if atom.cmp == GuardCmp::Lt {
                return Err(GuardError::FallGuard("<extra atom>".to_owned()));
            }
            if !guards.contains(atom) {
                guards.push(atom.clone());
            }
        }
        if guards.len() > 64 {
            return Err(GuardError::TooManyGuards(guards.len()));
        }

        // g ⇒ h  iff  (g ∧ ¬h ∧ resilience ∧ shared ≥ 0) is unsat.
        // Sound over-approximation of reachable shared values: any
        // non-negative vector (shared variables only ever grow from 0).
        let mut implies = vec![0u64; guards.len()];
        let mut initially_possible = 0u64;
        for (gi, g) in guards.iter().enumerate() {
            // Initial possibility: 0 >= rhs satisfiable under resilience.
            let (mut solver, params) = param_solver(ta);
            let rhs = param_expr_to_lin(&g.rhs, &params);
            solver.assert_constraint(Constraint::le(rhs, LinExpr::constant(0)));
            if solver.check().is_sat() {
                initially_possible |= 1 << gi;
            }

            for (hi, h) in guards.iter().enumerate() {
                if gi == hi {
                    continue;
                }
                let (mut solver, params) = param_solver(ta);
                // Shared variables as free non-negative unknowns.
                let shared: Vec<Var> = ta
                    .variables
                    .iter()
                    .map(|v| solver.new_nonneg_var(v.clone()))
                    .collect();
                let lhs_of = |guard: &AtomicGuard| {
                    let mut e = LinExpr::zero();
                    for (v, c) in guard.lhs.iter() {
                        e.add_term(shared[v.0], c);
                    }
                    e
                };
                // g holds.
                solver.assert_constraint(Constraint::ge(
                    lhs_of(g),
                    param_expr_to_lin(&g.rhs, &params),
                ));
                // h fails.
                solver.assert_constraint(Constraint::lt(
                    lhs_of(h),
                    param_expr_to_lin(&h.rhs, &params),
                ));
                if solver.check().is_unsat() {
                    implies[gi] |= 1 << hi;
                }
            }
        }
        // Static unlock dependencies: which rules can raise which
        // guards' left-hand sides. (Self-loops carry no updates, so only
        // proper rules appear.)
        let mut raisers: Vec<(u64, u64)> = Vec::new();
        let guard_mask = |rule: &holistic_ta::Rule| -> u64 {
            let mut mask = 0u64;
            for atom in rule.guard.atoms() {
                let idx = guards
                    .iter()
                    .position(|h| h == atom)
                    .expect("rule guard in vocabulary");
                mask |= 1 << idx;
            }
            mask
        };
        for rule in &ta.rules {
            if rule.update.is_empty() {
                continue;
            }
            let needs = guard_mask(rule);
            let mut raises = 0u64;
            for (gi, g) in guards.iter().enumerate() {
                if rule.update.iter().any(|&(v, _)| g.lhs.coeff(v) > 0) {
                    raises |= 1 << gi;
                }
            }
            if raises != 0 && !raisers.contains(&(needs, raises)) {
                raisers.push((needs, raises));
            }
        }

        Ok(GuardInfo {
            guards,
            implies,
            initially_possible,
            raisers,
        })
    }

    /// Whether guard `g` can *newly* unlock right after a segment whose
    /// context is `ctx`: some rule raising its left-hand side must have
    /// been usable in that segment. (Complete w.r.t. natural schedules,
    /// where a guard unlocks at the boundary right after the increment
    /// that crossed its threshold.)
    pub fn can_unlock_after(&self, g: usize, ctx: u64) -> bool {
        self.can_unlock_set(1 << g, ctx)
    }

    /// Whether the guard set `set` (bitmask) can unlock *simultaneously*
    /// right after a segment with context `ctx`: exactly one rule fires
    /// per step, so a single usable rule must raise every guard in the
    /// set.
    pub fn can_unlock_set(&self, set: u64, ctx: u64) -> bool {
        self.raisers
            .iter()
            .any(|&(needs, raises)| needs & !ctx == 0 && set & !raises == 0)
    }

    /// Number of distinct guards.
    ///
    /// Uses the implication table's length so that test doubles without
    /// a populated vocabulary behave consistently.
    pub fn len(&self) -> usize {
        self.implies.len()
    }

    /// Whether the automaton has no guards.
    pub fn is_empty(&self) -> bool {
        self.implies.is_empty()
    }

    /// Whether a context bitmask is closed under implication.
    pub fn is_closed(&self, ctx: u64) -> bool {
        for gi in 0..self.implies.len() {
            if ctx & (1 << gi) != 0 && self.implies[gi] & !ctx != 0 {
                return false;
            }
        }
        true
    }

    /// The guard index of an atomic guard, if it is in the vocabulary.
    pub fn index_of(&self, g: &AtomicGuard) -> Option<usize> {
        self.guards.iter().position(|h| h == g)
    }

    /// The bitmask of a rule's guard atoms.
    ///
    /// # Panics
    ///
    /// Panics if the rule mentions a guard outside the vocabulary
    /// (impossible for guards obtained from the same automaton).
    pub fn rule_mask(&self, rule: &holistic_ta::Rule) -> u64 {
        let mut mask = 0u64;
        for atom in rule.guard.atoms() {
            let idx = self.index_of(atom).expect("rule guard in vocabulary");
            mask |= 1 << idx;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{Guard, ParamExpr, TaBuilder, VarExpr};

    /// Two thresholds on the same variable: t+1-f and 2t+1-f.
    fn two_thresholds() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("g");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        b.resilience_gt(n, t, 3);
        b.resilience_ge(t, f);
        b.resilience_ge_const(f, 0);
        let b0 = b.shared("b0");
        let v = b.initial_location("V");
        let a = b.location("A");
        let c = b.final_location("C");
        let mut low = ParamExpr::param(t);
        low.add_constant(1);
        low.add_term(f, -1);
        let mut high = ParamExpr::term(t, 2);
        high.add_constant(1);
        high.add_term(f, -1);
        b.rule(
            "r1",
            v,
            a,
            Guard::atom(holistic_ta::AtomicGuard::ge(VarExpr::var(b0), low)),
        )
        .inc(b0, 1);
        b.rule(
            "r2",
            a,
            c,
            Guard::atom(holistic_ta::AtomicGuard::ge(VarExpr::var(b0), high)),
        );
        b.build().unwrap()
    }

    #[test]
    fn implication_orders_thresholds() {
        let ta = two_thresholds();
        let info = GuardInfo::analyse(&ta).unwrap();
        assert_eq!(info.len(), 2);
        // b0 >= 2t+1-f (index 1) implies b0 >= t+1-f (index 0) since t >= 0.
        assert_eq!(info.implies[1], 0b01);
        // The converse does not hold (t can be positive).
        assert_eq!(info.implies[0], 0b00);
    }

    #[test]
    fn closure_check() {
        let ta = two_thresholds();
        let info = GuardInfo::analyse(&ta).unwrap();
        assert!(info.is_closed(0b00));
        assert!(info.is_closed(0b01)); // low only
        assert!(info.is_closed(0b11)); // both
        assert!(!info.is_closed(0b10)); // high without low: pruned
    }

    #[test]
    fn no_guard_true_initially() {
        let ta = two_thresholds();
        let info = GuardInfo::analyse(&ta).unwrap();
        // Thresholds are >= 1 under t >= f >= 0... t+1-f >= 1, so 0 >= rhs
        // is unsatisfiable.
        assert_eq!(info.initially_possible, 0);
    }

    #[test]
    fn trivial_threshold_possible_initially() {
        let mut b = TaBuilder::new("g");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let c = b.final_location("C");
        // x >= f: with f = 0 this is true at x = 0.
        b.rule(
            "r1",
            v,
            c,
            Guard::atom(holistic_ta::AtomicGuard::ge(
                VarExpr::var(x),
                ParamExpr::param(f),
            )),
        );
        let ta = b.build().unwrap();
        let info = GuardInfo::analyse(&ta).unwrap();
        assert_eq!(info.initially_possible, 0b1);
    }

    #[test]
    fn fall_guard_rejected() {
        let mut b = TaBuilder::new("g");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let c = b.final_location("C");
        b.rule(
            "r1",
            v,
            c,
            Guard::atom(holistic_ta::AtomicGuard::lt(
                VarExpr::var(x),
                ParamExpr::constant(5),
            )),
        );
        let ta = b.build().unwrap();
        assert!(matches!(
            GuardInfo::analyse(&ta),
            Err(GuardError::FallGuard(_))
        ));
    }

    #[test]
    fn rule_masks() {
        let ta = two_thresholds();
        let info = GuardInfo::analyse(&ta).unwrap();
        let r1 = ta.rule_by_name("r1").unwrap();
        let r2 = ta.rule_by_name("r2").unwrap();
        assert_eq!(info.rule_mask(&ta.rules[r1.0]), 0b01);
        assert_eq!(info.rule_mask(&ta.rules[r2.0]), 0b10);
    }
}
