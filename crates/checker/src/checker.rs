//! The parameterized model checker: public API and strategy driver.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use holistic_lia::{SatResult, SolverConfig, SolverStats};
use holistic_ltl::{classify, stability, FragmentError, Justice, Ltl, Prop, Query};
use holistic_ta::{LocationId, ThresholdAutomaton, ValidationError};

use crate::counterexample::{Counterexample, ReplayError};
use crate::encode::{Encoding, SegmentKind};
use crate::explore::{
    CorePatternSet, Exploration, ExplorationCache, ExplorationKey, Pruner, Recorder,
};
use crate::guards::{GuardError, GuardInfo};

/// How schemas are generated for the SMT backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Run the pruned schedule DFS; fall back to
    /// [`Strategy::Monolithic`] if it hits the schema cap.
    #[default]
    Auto,
    /// Depth-first enumeration of monotone context schedules with
    /// incremental SMT feasibility pruning (one query per feasible
    /// schedule prefix) — the POPL'17 style; yields the per-property
    /// schema counts of the paper's Table 2.
    Enumerate,
    /// A single SMT query with symbolic contexts (`#guards + 1`
    /// segments, conditional guard constraints) — acceleration in the
    /// Para² style.
    Monolithic,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Auto => write!(f, "auto"),
            Strategy::Enumerate => write!(f, "enumerate"),
            Strategy::Monolithic => write!(f, "monolithic"),
        }
    }
}

/// Fault-injection hooks for chaos testing the worker-isolation path.
/// Everything defaults to "off"; the supervisor layer populates it from
/// the `HOLISTIC_CHAOS` environment hook, and the regression tests set
/// it directly (an in-config knob avoids racy env mutation across
/// parallel tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChaosConfig {
    /// Panic inside a DFS worker at every `N`th feasibility decision
    /// across the exploration (`0` disables). The panic is deliberately
    /// raised where a guard-evaluation bug would strike: right before
    /// the prefix's feasibility is resolved.
    pub panic_every: u64,
}

impl ChaosConfig {
    /// Whether any fault injection is armed.
    pub fn is_armed(&self) -> bool {
        self.panic_every > 0
    }
}

/// Configuration of a [`Checker`].
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Cap on schemas explored by the DFS; beyond it, `Auto` falls back
    /// to the monolithic strategy and `Enumerate` reports `Unknown`.
    /// The paper's naive consensus automaton exceeds any practical cap
    /// (its Table 2 row reads ">100 000 schemas, timeout").
    pub max_schemas: usize,
    /// Wall-clock budget for one `check_ltl`/`check_query` call,
    /// complementing `max_schemas` (which bounds *work*, not *time* —
    /// schema cost varies by orders of magnitude across automata). When
    /// the budget runs out the exploration stops at the next schema
    /// boundary and the verdict degrades gracefully to
    /// [`Verdict::Unknown`]; already-found violations are still
    /// reported. `None` (the default) means unbounded. The naive
    /// consensus automaton of the paper's Table 2 is the intended
    /// customer: its ">24h timeout" row can be demonstrated in seconds.
    pub time_budget: Option<Duration>,
    /// Budgets for each SMT query.
    pub solver: SolverConfig,
    /// Strategy selection.
    pub strategy: Strategy,
    /// Worker threads for the schedule DFS. `None` (the default) uses
    /// [`std::thread::available_parallelism`]; `Some(1)` runs fully
    /// sequential (and byte-deterministic) with no worker pool.
    pub threads: Option<usize>,
    /// Whether queries share a process-wide exploration cache (see
    /// [`crate::explore`]): identical base encodings are *replayed*
    /// instead of re-explored and weaker recorded bases prune infeasible
    /// subtrees. `false` restores fully independent per-property DFS
    /// (used by the equivalence tests).
    pub share_exploration: bool,
    /// Whether infeasible prefixes are generalized into *core patterns*
    /// via Farkas-certificate UNSAT cores (see
    /// [`Encoding::unsat_core_pattern`]) and used to prune whole
    /// sublattices of extension attempts, in addition to the exact
    /// chain-verdict pruning of the exploration cache. Only active
    /// while recording (it rides on `share_exploration`); learned
    /// patterns persist with the recorded exploration and transfer
    /// across properties under the usual key monotonicity.
    pub core_pruning: bool,
    /// Fault injection for chaos testing (defaults to off).
    pub chaos: ChaosConfig,
}

impl Default for CheckerConfig {
    fn default() -> CheckerConfig {
        CheckerConfig {
            max_schemas: 100_000,
            time_budget: None,
            solver: SolverConfig::default(),
            strategy: Strategy::Auto,
            threads: None,
            share_exploration: true,
            core_pruning: true,
            chaos: ChaosConfig::default(),
        }
    }
}

/// The verdict for one property (or query).
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The property holds for **all** parameters admitted by the
    /// resilience condition.
    Verified,
    /// The property fails; a validated counterexample is attached.
    Violated(Box<Counterexample>),
    /// No verdict (solver budget or schema cap exhausted).
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict is `Verified`.
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// Whether the verdict is `Violated`.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// The counterexample, if violated.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Violated(ce) => Some(ce),
            _ => None,
        }
    }

    /// Short label for reports (`verified` / `violated` / `unknown`).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Verified => "verified",
            Verdict::Violated(_) => "violated",
            Verdict::Unknown(_) => "unknown",
        }
    }

    /// The reason string, if the verdict is `Unknown`.
    pub fn unknown_reason(&self) -> Option<&str> {
        match self {
            Verdict::Unknown(r) => Some(r),
            _ => None,
        }
    }
}

/// Statistics for one query, mirroring the columns of the paper's
/// Table 2.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Number of schemas (feasible schedule prefixes / SMT queries).
    pub schemas: usize,
    /// Average schema length (number of segments).
    pub avg_segments: f64,
    /// Wall-clock time.
    pub duration: Duration,
    /// Whether the DFS hit the schema cap.
    pub capped: bool,
    /// Whether the wall-clock budget ([`CheckerConfig::time_budget`])
    /// ran out before exploration finished.
    pub timed_out: bool,
    /// The strategy actually used.
    pub strategy: Strategy,
    /// Cumulative SMT solver statistics (summed over worker threads;
    /// the sum is deterministic regardless of scheduling).
    pub solver: SolverStats,
    /// Lattice nodes whose feasibility verdict was answered by the
    /// exploration cache (replayed or pruned) instead of an SMT check.
    pub cache_hits: u64,
    /// Lattice nodes whose feasibility was decided by a fresh SMT
    /// check.
    pub cache_misses: u64,
    /// Whether the whole feasible frontier was replayed from the cache
    /// (no feasibility checks at all).
    pub replayed: bool,
    /// Core patterns newly learned during this query (fresh inserts
    /// into the shared pattern set; re-derivations of known patterns
    /// don't count).
    pub cores_learned: u64,
    /// Extension attempts pruned because a learned core pattern
    /// subsumed them (a subset of `cache_hits`).
    pub schemas_pruned_by_core: u64,
    /// Worker threads used by the schedule DFS.
    pub threads: usize,
}

/// The outcome of checking a single [`Query`].
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Verdict.
    pub verdict: Verdict,
    /// Statistics.
    pub stats: QueryStats,
}

/// The outcome of checking an LTL property (one report per top-level
/// conjunct query).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Per-query reports.
    pub queries: Vec<QueryReport>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl CheckReport {
    /// The combined verdict: `Violated` dominates, then `Unknown`, then
    /// `Verified`.
    pub fn verdict(&self) -> Verdict {
        for q in &self.queries {
            if q.verdict.is_violated() {
                return q.verdict.clone();
            }
        }
        for q in &self.queries {
            if let Verdict::Unknown(r) = &q.verdict {
                return Verdict::Unknown(r.clone());
            }
        }
        Verdict::Verified
    }

    /// Total schemas across queries.
    pub fn total_schemas(&self) -> usize {
        self.queries.iter().map(|q| q.stats.schemas).sum()
    }

    /// Average schema length across queries.
    pub fn avg_segments(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.stats.avg_segments)
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Total exploration-cache hits across queries.
    pub fn total_cache_hits(&self) -> u64 {
        self.queries.iter().map(|q| q.stats.cache_hits).sum()
    }

    /// Total exploration-cache misses (fresh feasibility checks).
    pub fn total_cache_misses(&self) -> u64 {
        self.queries.iter().map(|q| q.stats.cache_misses).sum()
    }

    /// Total core patterns newly learned across queries.
    pub fn total_cores_learned(&self) -> u64 {
        self.queries.iter().map(|q| q.stats.cores_learned).sum()
    }

    /// Total extension attempts pruned by learned core patterns.
    pub fn total_schemas_pruned_by_core(&self) -> u64 {
        self.queries
            .iter()
            .map(|q| q.stats.schemas_pruned_by_core)
            .sum()
    }

    /// Average size (member count) of extracted UNSAT cores, from the
    /// cumulative solver statistics; `0.0` when none were extracted.
    pub fn core_avg_size(&self) -> f64 {
        let s = self.solver_stats();
        if s.cores_extracted == 0 {
            0.0
        } else {
            s.core_members as f64 / s.cores_extracted as f64
        }
    }

    /// Cumulative solver statistics across queries.
    pub fn solver_stats(&self) -> SolverStats {
        let mut s = SolverStats::default();
        for q in &self.queries {
            s.merge(&q.stats.solver);
        }
        s
    }
}

/// Errors that prevent checking altogether (as opposed to `Unknown`
/// verdicts).
#[derive(Debug)]
pub enum CheckError {
    /// The automaton failed validation.
    Validation(ValidationError),
    /// The automaton is not a DAG (plus self-loops), which the schema
    /// theory requires.
    NotDag,
    /// Guard analysis failed (fall guards, too many guards).
    Guard(GuardError),
    /// The property is outside the checkable fragment.
    Fragment(FragmentError),
    /// A satisfying model failed concrete replay — an internal
    /// encoding/semantics mismatch.
    Replay(ReplayError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Validation(e) => write!(f, "invalid automaton: {e}"),
            CheckError::NotDag => write!(
                f,
                "automaton has a cycle among proper rules; the schema method needs a DAG"
            ),
            CheckError::Guard(e) => write!(f, "guard analysis: {e}"),
            CheckError::Fragment(e) => write!(f, "{e}"),
            CheckError::Replay(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// The canonical prefix of every panic-derived `Unknown` verdict, so
/// downstream failure classification (the supervisor's taxonomy) can
/// recognise worker panics without a dedicated verdict variant.
pub const WORKER_PANIC_PREFIX: &str = "worker panic";

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

impl From<ValidationError> for CheckError {
    fn from(e: ValidationError) -> CheckError {
        CheckError::Validation(e)
    }
}

impl From<GuardError> for CheckError {
    fn from(e: GuardError) -> CheckError {
        CheckError::Guard(e)
    }
}

impl From<FragmentError> for CheckError {
    fn from(e: FragmentError) -> CheckError {
        CheckError::Fragment(e)
    }
}

impl From<ReplayError> for CheckError {
    fn from(e: ReplayError) -> CheckError {
        CheckError::Replay(e)
    }
}

/// The parameterized model checker.
///
/// # Examples
///
/// ```
/// use holistic_checker::Checker;
/// use holistic_ltl::{Justice, Ltl, Prop};
/// use holistic_ta::parse_ta;
///
/// let ta = parse_ta(
///     "automaton echo {
///          params n, t, f;
///          shared e;
///          resilience n > 3t, t >= f, f >= 0;
///          processes n - f;
///          initial V;
///          final D;
///          rule send: V -> D when true do e += 1;
///      }",
/// )?;
/// let v = ta.location_by_name("V").unwrap();
/// // Termination: eventually everyone has sent (left V).
/// let spec = Ltl::eventually(Ltl::state(Prop::loc_empty(v)));
/// let checker = Checker::new();
/// let report = checker.check_ltl(&ta, &spec, &Justice::from_rules(&ta))?;
/// assert!(report.verdict().is_verified());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Checker {
    config: CheckerConfig,
    /// Cross-property exploration cache; clones share it, so checking
    /// several properties through clones of one checker still reuses
    /// recorded explorations.
    cache: Arc<ExplorationCache>,
}

impl Checker {
    /// A checker with default configuration.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker with explicit configuration.
    pub fn with_config(config: CheckerConfig) -> Checker {
        Checker {
            config,
            cache: Arc::new(ExplorationCache::new()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The number of recorded explorations in the shared cache.
    pub fn cached_explorations(&self) -> usize {
        self.cache.len()
    }

    /// The shared cross-property exploration cache, for checkpointing
    /// ([`ExplorationCache::export`]) and resume
    /// ([`ExplorationCache::import`]).
    pub fn exploration_cache(&self) -> &ExplorationCache {
        &self.cache
    }

    /// Checks an LTL property of the automaton for **all** parameter
    /// valuations admitted by the resilience condition, under the given
    /// justice assumption (used by liveness queries only).
    ///
    /// # Errors
    ///
    /// [`CheckError`] when the automaton or formula is outside the
    /// supported class; budget problems surface as
    /// [`Verdict::Unknown`] instead.
    pub fn check_ltl(
        &self,
        ta: &ThresholdAutomaton,
        formula: &Ltl,
        justice: &Justice,
    ) -> Result<CheckReport, CheckError> {
        let start = Instant::now();
        // One wall-clock budget for the whole call, shared by all
        // conjunct queries.
        let deadline = self.config.time_budget.map(|b| start + b);
        ta.validate()?;
        if !ta.is_dag() {
            return Err(CheckError::NotDag);
        }
        let queries = classify(ta, formula)?;
        let mut reports = Vec::with_capacity(queries.len());
        for q in &queries {
            reports.push(self.run_query(ta, q, justice, deadline)?);
        }
        Ok(CheckReport {
            queries: reports,
            duration: start.elapsed(),
        })
    }

    /// Checks a single pre-classified query.
    ///
    /// # Errors
    ///
    /// See [`check_ltl`](Checker::check_ltl).
    pub fn check_query(
        &self,
        ta: &ThresholdAutomaton,
        query: &Query,
        justice: &Justice,
    ) -> Result<QueryReport, CheckError> {
        ta.validate()?;
        if !ta.is_dag() {
            return Err(CheckError::NotDag);
        }
        let deadline = self.config.time_budget.map(|b| Instant::now() + b);
        self.run_query(ta, query, justice, deadline)
    }

    fn run_query(
        &self,
        ta: &ThresholdAutomaton,
        query: &Query,
        justice: &Justice,
        deadline: Option<Instant>,
    ) -> Result<QueryReport, CheckError> {
        let _span = holistic_obs::span("checker.query");
        let start = Instant::now();
        let plan = QueryPlan::new(ta, query, justice);
        // The context vocabulary is the automaton's rule guards: schema
        // contexts decide their truth at the tail, so justice and tail
        // propositions over them partially evaluate into plain
        // conjunctions. (Threshold atoms that appear only in the
        // property/justice — e.g. BV-Obligation's `b0 ≥ t+1` — stay
        // symbolic: adding them to the vocabulary would blow up the
        // schedule lattice for no pruning gain.)
        let info = GuardInfo::analyse(ta)?;
        match self.config.strategy {
            Strategy::Monolithic => self.run_monolithic(ta, &info, &plan, start, deadline),
            Strategy::Enumerate | Strategy::Auto => self.run_dfs(ta, &info, &plan, start, deadline),
        }
    }

    /// Resolves the worker-thread count for the schedule DFS.
    fn thread_count(&self) -> usize {
        self.config
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// Depth-first schedule exploration with incremental feasibility
    /// pruning: a schedule prefix whose base constraints are already
    /// unsatisfiable cannot support any extension (extensions only add
    /// constraints), so its whole subtree is skipped.
    ///
    /// With [`CheckerConfig::share_exploration`] on, feasibility
    /// verdicts flow through the cross-property [`ExplorationCache`]:
    /// an identical base encoding is *replayed* (no feasibility checks
    /// at all), a weaker recorded base *prunes* infeasible subtrees,
    /// and when neither exists a *skeleton* exploration of the weakest
    /// base is recorded first so every later property of the automaton
    /// has something to hit.
    fn run_dfs(
        &self,
        ta: &ThresholdAutomaton,
        info: &GuardInfo,
        plan: &QueryPlan,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<QueryReport, CheckError> {
        let copies = plan.witnesses.len() + 1;
        let key = ExplorationKey::new(ta, &plan.globally_empty, &plan.initially, copies);
        // Core patterns learned while exploring the base are part of
        // this query's work; fold them into its statistics.
        let mut skeleton_cores_learned = 0u64;
        let mut skeleton_pruned_by_core = 0u64;
        let mode = if self.config.share_exploration {
            if let Some(exp) = self.cache.replayable(&key) {
                CacheMode::Replay(exp)
            } else {
                let mut pruner = self.cache.pruner_for(&key);
                if pruner.is_none() && key != key.base() {
                    // Nothing recorded for this automaton yet: explore
                    // its *base* once — the skeleton at ONE segment
                    // copy, the most transferable recording possible
                    // (see [`ExplorationKey::base`]). Single-copy
                    // queries of the automaton replay or prune against
                    // it directly; multi-copy queries inherit its
                    // feasible verdicts (they transfer upward in
                    // copies) and its core patterns (copies-
                    // independent), leaving only the residual
                    // infeasible checks the patterns miss. Shares the
                    // query's deadline; a truncated base still prunes,
                    // it just isn't replayable.
                    let trivially = Prop::True;
                    let spec = ExploreSpec {
                        ta,
                        info,
                        globally_empty: &[],
                        initially: &trivially,
                        query: None,
                        copies: 1,
                        deadline,
                        mode: CacheMode::Record { pruner: None },
                    };
                    let out = {
                        let _span = holistic_obs::span("checker.skeleton");
                        self.explore(&spec)?
                    };
                    let covered = out.fully_covered();
                    skeleton_cores_learned = out.cores_learned;
                    skeleton_pruned_by_core = out.pruned_by_core;
                    self.cache.insert(out.recorder.finish(key.base(), covered));
                    pruner = self.cache.pruner_for(&key);
                }
                CacheMode::Record { pruner }
            }
        } else {
            CacheMode::Off
        };
        let replayed = matches!(mode, CacheMode::Replay(_));
        let record = matches!(mode, CacheMode::Record { .. });
        let spec = ExploreSpec {
            ta,
            info,
            globally_empty: &plan.globally_empty,
            initially: &plan.initially,
            query: Some(plan),
            copies,
            deadline,
            mode,
        };
        let out = self.explore(&spec)?;
        if record {
            let covered = out.fully_covered();
            self.cache.insert(out.recorder.finish(key, covered));
        }

        let stats = QueryStats {
            schemas: out.schemas,
            avg_segments: if out.schemas == 0 {
                0.0
            } else {
                out.total_segments as f64 / out.schemas as f64
            },
            duration: start.elapsed(),
            capped: out.capped,
            timed_out: out.timed_out,
            strategy: Strategy::Enumerate,
            solver: out.solver,
            cache_hits: out.cache_hits,
            cache_misses: out.cache_misses,
            replayed,
            cores_learned: skeleton_cores_learned + out.cores_learned,
            schemas_pruned_by_core: skeleton_pruned_by_core + out.pruned_by_core,
            threads: out.threads,
        };
        let verdict = if let Some((_, ce)) = out.violation {
            // A violation found before the budget ran out is still a
            // violation: time pressure never weakens a verdict we have.
            Verdict::Violated(Box::new(ce))
        } else if out.timed_out {
            Verdict::Unknown(format!(
                "time budget of {:?} exhausted after {} schemas",
                self.config.time_budget.unwrap_or_default(),
                out.schemas
            ))
        } else if out.capped {
            Verdict::Unknown(format!(
                "schedule DFS exceeded the cap of {} schemas",
                self.config.max_schemas
            ))
        } else if let Some(reason) = out.unknown {
            Verdict::Unknown(reason)
        } else {
            Verdict::Verified
        };
        Ok(QueryReport { verdict, stats })
    }

    /// Runs one lattice exploration (skeleton or full query) over the
    /// work-stealing pool and merges the per-worker outcomes
    /// deterministically.
    fn explore(&self, spec: &ExploreSpec<'_>) -> Result<ExploreOutcome, CheckError> {
        let info = spec.info;
        let full: u64 = if info.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << info.len()) - 1
        };
        let threads = self.thread_count();

        // Initial contexts: closed subsets of the initially-possible
        // guards (usually just ∅), seeded in canonical ascending order.
        let mut initial_contexts = Vec::new();
        let universe = info.initially_possible;
        let mut sub = universe;
        loop {
            if info.is_closed(sub) {
                initial_contexts.push(sub);
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & universe;
        }
        initial_contexts.sort_unstable();
        // The queue is a LIFO stack; push seeds reversed so they are
        // taken in ascending order.
        let seeds: Vec<Vec<u64>> = initial_contexts.iter().rev().map(|&c| vec![c]).collect();

        // The shared core-pattern set, present only while recording
        // with core pruning enabled: seeded with the patterns carried
        // by every applicable recorded exploration, and extended
        // concurrently as workers learn new certificates.
        let cores = match &spec.mode {
            CacheMode::Record { pruner } if self.config.core_pruning => Some(RwLock::new(
                pruner
                    .as_ref()
                    .map(|p| p.core_patterns())
                    .unwrap_or_default(),
            )),
            _ => None,
        };

        let ex = Explore {
            checker: self,
            spec,
            full,
            threads,
            cores,
            probed: Mutex::new(HashSet::new()),
            query_probes: Mutex::new(HashMap::new()),
            schemas: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            pending: AtomicUsize::new(seeds.len()),
            idle: AtomicUsize::new(0),
            queue: Mutex::new(seeds),
            available: Condvar::new(),
            error: Mutex::new(None),
            chaos_ticks: AtomicU64::new(0),
        };

        // A worker panic (a checker bug, or injected chaos) must not
        // abort the whole exploration — let alone a whole matrix run.
        // Each worker body runs under `catch_unwind`; a panic poisons
        // only that worker's recording (`saw_unknown`, so it is never
        // replayed as complete) and degrades the verdict to `Unknown`
        // with the canonical [`WORKER_PANIC_PREFIX`].
        fn run_isolated(w: &mut Worker<'_>) {
            let ex = w.ex;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| w.run())) {
                w.unknown.get_or_insert(format!(
                    "{WORKER_PANIC_PREFIX}: {}",
                    panic_message(payload.as_ref())
                ));
                w.recorder.saw_unknown = true;
                // The in-flight task's `pending` slot was never released
                // and partial results are untrustworthy: stop the
                // exploration and wake any workers parked on the queue
                // so the pool drains instead of deadlocking.
                ex.stop.store(true, Ordering::SeqCst);
                let _guard = ex.queue.lock().unwrap_or_else(|p| p.into_inner());
                ex.available.notify_all();
            }
        }

        let explore_span = holistic_obs::span("checker.explore");
        let explore_id = explore_span.id();
        let mut workers: Vec<Worker<'_>> = Vec::with_capacity(threads);
        if threads == 1 {
            // Fully sequential: no pool, byte-deterministic.
            let _span = holistic_obs::span("checker.worker");
            let mut w = Worker::new(&ex);
            run_isolated(&mut w);
            workers.push(w);
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            // Worker spans live on pool threads; parent
                            // them under this exploration's span.
                            let _adopt = holistic_obs::adopt(explore_id);
                            let _span = holistic_obs::span("checker.worker");
                            let mut w = Worker::new(&ex);
                            run_isolated(&mut w);
                            w
                        })
                    })
                    .collect();
                // Joining in spawn order keeps the merge deterministic
                // for everything summed; order-sensitive fields are
                // canonicalized below. Panics never propagate here —
                // `run_isolated` caught them inside the closure.
                for h in handles {
                    workers.push(h.join().expect("worker closures do not panic"));
                }
            });
        }
        if let Some(e) = ex.error.lock().unwrap().take() {
            return Err(e);
        }

        let mut out = ExploreOutcome {
            schemas: 0,
            total_segments: 0,
            capped: false,
            timed_out: false,
            violation: None,
            unknown: None,
            cache_hits: 0,
            cache_misses: 0,
            cores_learned: 0,
            pruned_by_core: 0,
            solver: SolverStats::default(),
            recorder: Recorder::new(),
            threads,
        };
        for w in workers {
            out.schemas += w.schemas;
            out.total_segments += w.total_segments;
            out.capped |= w.capped;
            out.timed_out |= w.timed_out;
            out.cache_hits += w.cache_hits;
            out.cache_misses += w.cache_misses;
            out.cores_learned += w.cores_learned;
            out.pruned_by_core += w.pruned_by_core;
            out.solver.merge(&w.solver);
            out.recorder.merge(w.recorder);
            // Canonical violation: the chain earliest in DFS preorder
            // wins, regardless of which worker found it first.
            match (&out.violation, w.violation) {
                (None, Some(v)) => out.violation = Some(v),
                (Some(cur), Some(v)) if v.0 < cur.0 => out.violation = Some(v),
                _ => {}
            }
            if out.unknown.is_none() {
                out.unknown = w.unknown;
            }
        }
        Ok(out)
    }

    fn run_monolithic(
        &self,
        ta: &ThresholdAutomaton,
        info: &GuardInfo,
        plan: &QueryPlan,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<QueryReport, CheckError> {
        // The monolithic strategy is a single SMT call; the wall-clock
        // budget is only consulted at the query boundary (the call
        // itself is bounded by the solver's own budgets).
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(QueryReport {
                verdict: Verdict::Unknown(format!(
                    "time budget of {:?} exhausted before the monolithic query",
                    self.config.time_budget.unwrap_or_default()
                )),
                stats: QueryStats {
                    schemas: 0,
                    avg_segments: 0.0,
                    duration: start.elapsed(),
                    capped: false,
                    timed_out: true,
                    strategy: Strategy::Monolithic,
                    solver: SolverStats::default(),
                    cache_hits: 0,
                    cache_misses: 0,
                    replayed: false,
                    cores_learned: 0,
                    schemas_pruned_by_core: 0,
                    threads: 1,
                },
            });
        }
        let num_segments = info.len() + 1 + plan.witnesses.len();
        let segments = vec![SegmentKind::Free; num_segments];
        let mut solver = self.config.solver;
        solver.deadline = deadline;
        let mut enc = Encoding::with_segments(ta, info, &segments, &plan.globally_empty, solver);
        enc.assert_prop_at(&plan.initially, 0);
        plan.assert_query(&mut enc, info);
        let result = enc.check();
        // Monolithic queries bypass the worker pool, so publish their
        // registry deltas here (the pool publishes per worker).
        holistic_obs::add("checker.schemas", 1);
        holistic_obs::add("checker.segments", num_segments as u64);
        enc.solver_stats().publish();
        let stats = QueryStats {
            schemas: 1,
            avg_segments: num_segments as f64,
            duration: start.elapsed(),
            capped: false,
            timed_out: false,
            strategy: Strategy::Monolithic,
            solver: enc.solver_stats(),
            cache_hits: 0,
            cache_misses: 0,
            replayed: false,
            cores_learned: 0,
            schemas_pruned_by_core: 0,
            threads: 1,
        };
        let verdict = match result {
            SatResult::Sat(model) => {
                let run = enc.extract(&model);
                Verdict::Violated(Box::new(Counterexample::replay(ta, &run)?))
            }
            SatResult::Unsat => Verdict::Verified,
            SatResult::Unknown(reason) => Verdict::Unknown(reason.to_string()),
        };
        Ok(QueryReport { verdict, stats })
    }
}

/// How feasibility verdicts interact with the exploration cache during
/// one lattice exploration.
enum CacheMode {
    /// No cache: every verdict is a fresh SMT check.
    Off,
    /// Fresh exploration, recorded for later queries; recorded weaker
    /// bases (aggregated over every overlapping banned-location set)
    /// prune infeasible subtrees.
    Record { pruner: Option<Pruner> },
    /// A complete recording under the identical key: feasibility is
    /// answered entirely from it.
    Replay(Arc<Exploration>),
}

/// Everything one lattice exploration needs, bundled.
struct ExploreSpec<'a> {
    ta: &'a ThresholdAutomaton,
    info: &'a GuardInfo,
    globally_empty: &'a [LocationId],
    initially: &'a Prop,
    /// `None` runs a skeleton pass: feasibility only, no per-prefix
    /// query checks.
    query: Option<&'a QueryPlan>,
    copies: usize,
    deadline: Option<Instant>,
    mode: CacheMode,
}

/// Shared state of one exploration's work-stealing pool.
struct Explore<'a> {
    checker: &'a Checker,
    spec: &'a ExploreSpec<'a>,
    full: u64,
    threads: usize,
    /// Global schema counter (the cap is a property of the whole
    /// exploration, not of one worker).
    schemas: AtomicUsize,
    stop: AtomicBool,
    /// Tasks queued *or running*; when it reaches zero the exploration
    /// is drained.
    pending: AtomicUsize,
    /// Workers currently waiting for work — the signal that makes busy
    /// workers donate subtrees instead of recursing into them.
    idle: AtomicUsize,
    /// Core patterns shared by all workers of this exploration: read
    /// on every extension attempt, written when a worker distills a
    /// fresh certificate. `None` disables core pruning (replay mode,
    /// cache off, or [`CheckerConfig::core_pruning`] = false).
    cores: Option<RwLock<CorePatternSet>>,
    /// Extension steps `(prev, newly)` whose two-segment abstraction
    /// has already been probed for a core pattern (successfully or
    /// not), so each distinct step pays for at most one probe per
    /// exploration.
    probed: Mutex<HashSet<(u64, u64)>>,
    /// Memoized query-probe verdicts by final context: `true` means the
    /// aggregated one-segment system under that context already refutes
    /// the query, so every schema ending there can skip its per-schema
    /// query check (see [`Worker::query_pruned`]).
    query_probes: Mutex<HashMap<u64, bool>>,
    /// Pending subtree roots (context chains), LIFO.
    queue: Mutex<Vec<Vec<u64>>>,
    available: Condvar,
    error: Mutex<Option<CheckError>>,
    /// Global feasibility-decision counter driving
    /// [`ChaosConfig::panic_every`] (shared across workers so the Nth
    /// decision panics exactly once per exploration regardless of
    /// scheduling).
    chaos_ticks: AtomicU64,
}

/// Merged result of one exploration.
struct ExploreOutcome {
    schemas: usize,
    total_segments: usize,
    capped: bool,
    timed_out: bool,
    violation: Option<(Vec<u64>, Counterexample)>,
    unknown: Option<String>,
    cache_hits: u64,
    cache_misses: u64,
    cores_learned: u64,
    pruned_by_core: u64,
    solver: SolverStats,
    recorder: Recorder,
    threads: usize,
}

impl ExploreOutcome {
    /// Whether the whole lattice received definite feasibility verdicts
    /// (nothing stopped the exploration early) — the precondition for a
    /// replayable recording.
    fn fully_covered(&self) -> bool {
        self.violation.is_none() && !self.capped && !self.timed_out
    }
}

/// One worker of the exploration pool: owns its encoding, statistics,
/// and recording; everything is merged after the pool drains.
struct Worker<'a> {
    ex: &'a Explore<'a>,
    schemas: usize,
    total_segments: usize,
    capped: bool,
    timed_out: bool,
    violation: Option<(Vec<u64>, Counterexample)>,
    unknown: Option<String>,
    cache_hits: u64,
    cache_misses: u64,
    cores_learned: u64,
    pruned_by_core: u64,
    recorder: Recorder,
    solver: SolverStats,
}

/// Tableau rows past which a worker rebuilds its encoding from the
/// current chain. The tableau only grows during a lattice walk, so rows
/// from long-abandoned prefixes keep participating in every pivot
/// substitution; rebuilding bounds that cost. Solver state affects only
/// speed — verdicts, schema counts, and counterexamples are unchanged.
const REBUILD_ROWS: usize = 768;

impl<'a> Worker<'a> {
    fn new(ex: &'a Explore<'a>) -> Worker<'a> {
        Worker {
            ex,
            schemas: 0,
            total_segments: 0,
            capped: false,
            timed_out: false,
            violation: None,
            unknown: None,
            cache_hits: 0,
            cache_misses: 0,
            cores_learned: 0,
            pruned_by_core: 0,
            recorder: Recorder::new(),
            solver: SolverStats::default(),
        }
    }

    /// The worker main loop: steal a subtree root, rebuild the prefix,
    /// explore it depth-first (donating sub-subtrees whenever other
    /// workers go hungry), repeat until the lattice is drained or the
    /// exploration stops.
    fn run(&mut self) {
        let ex = self.ex;
        let spec = ex.spec;
        let mut enc = self.fresh_encoding();
        let mut chain: Vec<u64> = Vec::new();
        while let Some(prefix) = self.next_task() {
            for &ctx in &prefix {
                enc.push_segments(SegmentKind::Fixed(ctx), spec.copies);
            }
            chain.clear();
            chain.extend_from_slice(&prefix);
            let r = self.recurse(&mut enc, &mut chain);
            for _ in &prefix {
                enc.pop_segments();
            }
            if let Err(e) = r {
                ex.error.lock().unwrap().get_or_insert(e);
                ex.stop.store(true, Ordering::SeqCst);
            }
            if self.violation.is_some() || self.capped || self.timed_out {
                ex.stop.store(true, Ordering::SeqCst);
            }
            let drained = ex.pending.fetch_sub(1, Ordering::SeqCst) == 1;
            if drained || ex.stop.load(Ordering::SeqCst) {
                // Wake everyone so idle workers can exit.
                let _guard = ex.queue.lock().unwrap();
                ex.available.notify_all();
            }
        }
        self.solver.merge(&enc.solver_stats());
        self.publish();
    }

    /// Publishes this worker's accumulated statistics to the global
    /// [`holistic_obs`] metrics registry, once, on the worker's own
    /// thread at the end of its run. Counter totals therefore equal the
    /// cross-worker merge [`Checker::explore`] performs — the
    /// reconciliation tests rely on this equality.
    fn publish(&self) {
        holistic_obs::add("checker.schemas", self.schemas as u64);
        holistic_obs::add("checker.segments", self.total_segments as u64);
        holistic_obs::add("checker.cache_hits", self.cache_hits);
        holistic_obs::add("checker.cache_misses", self.cache_misses);
        holistic_obs::add("checker.cores_learned", self.cores_learned);
        holistic_obs::add("checker.schemas_pruned_by_core", self.pruned_by_core);
        self.solver.publish();
    }

    /// A fresh encoding holding only the base assertions (no segments).
    fn fresh_encoding(&self) -> Encoding<'a> {
        let spec = self.ex.spec;
        // The query deadline reaches into the solver so a pathological
        // tableau is interrupted mid-pivot instead of overshooting the
        // budget by the length of one unbounded simplex run.
        let mut solver = self.ex.checker.config.solver;
        solver.deadline = spec.deadline;
        let mut enc = Encoding::new(spec.ta, spec.info, spec.globally_empty, solver);
        enc.assert_prop_at(spec.initially, 0);
        enc
    }

    /// Rebuilds `enc` from `chain` when the tableau has bloated past
    /// [`REBUILD_ROWS`]: stale rows from abandoned prefixes slow every
    /// pivot, and re-asserting the live chain is far cheaper than
    /// dragging them along. Pure exact arithmetic makes this invisible
    /// to results; only accumulated statistics must be carried over.
    fn maybe_rebuild(&mut self, enc: &mut Encoding<'a>, chain: &[u64]) {
        if enc.tableau_size().0 < REBUILD_ROWS {
            return;
        }
        self.solver.merge(&enc.solver_stats());
        let mut fresh = self.fresh_encoding();
        for &ctx in chain {
            fresh.push_segments(SegmentKind::Fixed(ctx), self.ex.spec.copies);
        }
        *enc = fresh;
    }

    /// Blocks until a task is available, the exploration stops, or the
    /// lattice is drained (queue empty with nothing running).
    fn next_task(&self) -> Option<Vec<u64>> {
        let ex = self.ex;
        let mut queue = ex.queue.lock().unwrap();
        loop {
            if ex.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(t) = queue.pop() {
                return Some(t);
            }
            if ex.pending.load(Ordering::SeqCst) == 0 {
                return None;
            }
            ex.idle.fetch_add(1, Ordering::SeqCst);
            queue = ex.available.wait(queue).unwrap();
            ex.idle.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Hands a subtree root to the pool instead of recursing into it.
    fn donate(&self, chain: &[u64]) {
        let ex = self.ex;
        ex.pending.fetch_add(1, Ordering::SeqCst);
        let mut queue = ex.queue.lock().unwrap();
        queue.push(chain.to_vec());
        ex.available.notify_one();
    }

    /// Resolves this prefix's feasibility: exploration cache first,
    /// fresh SMT check otherwise. Returns whether to keep exploring
    /// (feasible, or unknown — which cannot justify pruning).
    fn feasibility(&mut self, enc: &mut Encoding<'_>, chain: &[u64]) -> bool {
        match &self.ex.spec.mode {
            CacheMode::Replay(exp) => match exp.verdict(chain) {
                Some(f) => {
                    self.cache_hits += 1;
                    f
                }
                // Complete recordings cover every reachable chain, but
                // fall back safely rather than trust that invariant.
                None => self.smt_feasibility(enc, chain, false),
            },
            CacheMode::Record { pruner } => {
                if pruner.as_ref().is_some_and(|p| p.prunes_chain(chain)) {
                    // Infeasible under a weaker base ⇒ infeasible here.
                    self.cache_hits += 1;
                    self.recorder.record(chain, false);
                    false
                } else if self.core_prunes(chain) {
                    // A learned core pattern subsumes this extension:
                    // some certificate proves no chain with these
                    // contexts can newly unlock this guard set. Record
                    // the verdict so replay behaves identically.
                    self.cache_hits += 1;
                    self.pruned_by_core += 1;
                    self.recorder.record(chain, false);
                    false
                } else if pruner.as_ref().is_some_and(|p| p.feasible_chain(chain)) {
                    // Feasible under a stronger base with no more
                    // copies ⇒ the recorded witness transfers here.
                    self.cache_hits += 1;
                    self.recorder.record(chain, true);
                    true
                } else {
                    let feasible = self.smt_feasibility(enc, chain, true);
                    if !feasible {
                        self.try_learn_core(chain);
                    }
                    feasible
                }
            }
            CacheMode::Off => self.smt_feasibility(enc, chain, false),
        }
    }

    /// No-solver pruning of an extension *before* its segments are
    /// pushed: recorded verdicts, transferred infeasibility, and
    /// learned core patterns all decide on the chain alone, so
    /// consulting them first saves the dominant per-extension cost
    /// (pushing and later popping `copies` segments of tableau rows)
    /// for every pruned subtree. Exactly mirrors the corresponding
    /// arms of [`Worker::feasibility`] — including recording and
    /// counters — so verdicts and replay behave identically; a chain
    /// pruned here simply never reaches `recurse`, which would have
    /// pruned it anyway.
    fn prune_before_push(&mut self, chain: &[u64]) -> bool {
        match &self.ex.spec.mode {
            CacheMode::Replay(exp) => {
                if exp.verdict(chain) == Some(false) {
                    self.cache_hits += 1;
                    return true;
                }
            }
            CacheMode::Record { pruner } => {
                if pruner.as_ref().is_some_and(|p| p.prunes_chain(chain)) {
                    self.cache_hits += 1;
                    self.recorder.record(chain, false);
                    return true;
                }
                if self.core_prunes(chain) {
                    self.cache_hits += 1;
                    self.pruned_by_core += 1;
                    self.recorder.record(chain, false);
                    return true;
                }
            }
            CacheMode::Off => {}
        }
        false
    }

    /// Whether a learned core pattern subsumes this chain's final
    /// extension step (previous context ⊆ some pattern mask, pattern
    /// delta ⊆ the newly unlocked set, pattern held ⊆ previous
    /// context).
    fn core_prunes(&self, chain: &[u64]) -> bool {
        let Some(cores) = &self.ex.cores else {
            return false;
        };
        let last = *chain.last().expect("chain is never empty");
        let prev = if chain.len() >= 2 {
            chain[chain.len() - 2]
        } else {
            0
        };
        cores.read().unwrap().prunes(prev, last & !prev)
    }

    /// The case-split planner's bias bits: guards recurring in the
    /// exploration's learned core patterns (empty when core pruning is
    /// off). See [`Encoding::set_hot_guards`].
    fn core_hot_guards(&self) -> u64 {
        self.ex
            .cores
            .as_ref()
            .map_or(0, |c| c.read().unwrap().hot_guard_bits())
    }

    /// After a fresh `Unsat`, tries to distill a generalized core
    /// pattern from the refuted extension step `(prev, newly)` and
    /// publishes it: to the shared in-exploration set (so sibling
    /// workers prune immediately) and to the recorder (so it persists
    /// with the exploration and transfers to later queries).
    ///
    /// Rather than projecting the refuted chain's own certificate —
    /// whose core is usually pinned to chain-specific constraints even
    /// when the generalized pattern holds — the step is re-refuted on
    /// the smallest encoding the pattern semantics quantifies over (see
    /// [`Worker::probe_core_pattern`]). Each distinct `(prev, newly)`
    /// pair is probed at most once per exploration, shared across
    /// workers; every failure mode — feasible abstraction, no
    /// certificate, disallowed provenance — just declines to learn.
    fn try_learn_core(&mut self, chain: &[u64]) {
        if self.ex.cores.is_none() {
            return;
        }
        let last = *chain.last().expect("chain is never empty");
        let prev = if chain.len() >= 2 {
            chain[chain.len() - 2]
        } else {
            0
        };
        let newly = last & !prev;
        if newly == 0 || !self.ex.probed.lock().unwrap().insert((prev, newly)) {
            return;
        }
        let Some((mask, held, delta)) = self.probe_core_pattern(prev, newly) else {
            return;
        };
        debug_assert_eq!(
            mask, prev,
            "pattern mask must be the refuted step's prefix context"
        );
        debug_assert_eq!(
            held & !prev,
            0,
            "held guards must come from the refuted step's prefix context"
        );
        debug_assert_eq!(
            delta & !newly,
            0,
            "pattern delta must lie within the refuted step's newly unlocked guards"
        );
        let cores = self.ex.cores.as_ref().expect("checked above");
        if cores.write().unwrap().insert(mask, held, delta) {
            self.recorder.record_core(mask, held, delta);
            self.cores_learned += 1;
        }
    }

    /// Whether the per-schema query check of the current prefix is
    /// discharged by the **aggregated query probe** of its final
    /// context `F`: a fresh system with the same parameters, initial
    /// distribution, and query asserts, but the whole run collapsed
    /// into a single segment available under `F`.
    ///
    /// Any run of any schema ending at `F` fires only rules available
    /// under contexts `⊆ F` (contexts grow monotonically along a
    /// chain), so its full firing multiset aggregates into the probe's
    /// one segment with identical initial and final boundary values —
    /// the same argument as [`Encoding::probe_core_pattern`]. Every
    /// query constraint evaluates on those boundaries: `Unsat` for the
    /// probe therefore refutes the query for *every* schema ending at
    /// `F`, however long. Restricted to plans without unstable
    /// witnesses (mid-run boundary disjunctions do not aggregate into
    /// one segment) — exactly the liveness tails whose per-schema
    /// checks dominate. A `Sat` or `Unknown` probe proves nothing and
    /// each schema keeps its own check, so verdicts and counterexamples
    /// are untouched either way; probed once per final context per
    /// exploration.
    fn query_pruned(&mut self, enc: &Encoding<'_>, plan: &QueryPlan) -> bool {
        if !self.ex.checker.config.core_pruning || !plan.witnesses.is_empty() {
            return false;
        }
        let Some(ctx) = enc.final_context() else {
            return false;
        };
        if let Some(&pruned) = self.ex.query_probes.lock().unwrap().get(&ctx) {
            return pruned;
        }
        let _span = holistic_obs::span("checker.query_probe");
        let started = Instant::now();
        let spec = self.ex.spec;
        let mut probe = self.fresh_encoding();
        probe.set_hot_guards(self.core_hot_guards());
        probe.push_probe_segment(ctx);
        probe.push_query();
        probe.assert_tail_exact();
        plan.assert_query(&mut probe, spec.info);
        let pruned = matches!(probe.check(), SatResult::Unsat);
        self.solver.merge(&SolverStats {
            core_micros: started.elapsed().as_micros() as u64,
            ..SolverStats::default()
        });
        self.ex.query_probes.lock().unwrap().insert(ctx, pruned);
        pruned
    }

    /// Runs [`Encoding::probe_core_pattern`] for an extension step on a
    /// fresh base encoding. Only the certificate counters (plus the
    /// probe's wall time) are folded into this worker's statistics: the
    /// probe is certificate machinery, not lattice search.
    fn probe_core_pattern(&mut self, prev: u64, newly: u64) -> Option<(u64, u64, u64)> {
        let _span = holistic_obs::span("checker.core_probe");
        let started = Instant::now();
        let mut enc = self.fresh_encoding();
        let pattern = enc.probe_core_pattern(prev, newly);
        let s = enc.solver_stats();
        self.solver.merge(&SolverStats {
            cores_extracted: s.cores_extracted,
            core_members: s.core_members,
            core_micros: started.elapsed().as_micros() as u64,
            ..SolverStats::default()
        });
        pattern
    }

    fn smt_feasibility(&mut self, enc: &mut Encoding<'_>, chain: &[u64], record: bool) -> bool {
        let _span = holistic_obs::span("checker.feasibility");
        self.cache_misses += 1;
        match enc.check() {
            SatResult::Sat(_) => {
                if record {
                    self.recorder.record(chain, true);
                }
                true
            }
            SatResult::Unsat => {
                if record {
                    self.recorder.record(chain, false);
                }
                false
            }
            SatResult::Unknown(reason) => {
                // Cannot prune, cannot trust: leave the chain without a
                // verdict and keep exploring extensions conservatively.
                self.recorder.saw_unknown = true;
                self.unknown.get_or_insert(reason.to_string());
                true
            }
        }
    }

    /// Precondition: `enc` holds the segments of `chain`, whose last
    /// context is the current node.
    fn recurse(&mut self, enc: &mut Encoding<'a>, chain: &mut Vec<u64>) -> Result<(), CheckError> {
        let ex = self.ex;
        let spec = ex.spec;
        if ex.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.maybe_rebuild(enc, chain);
        if ex.schemas.load(Ordering::Relaxed) >= ex.checker.config.max_schemas {
            self.capped = true;
            return Ok(());
        }
        // The budget is checked once per schema: between checks the
        // longest uninterruptible stretch is a single SMT query, itself
        // bounded by the solver's budgets — so exhaustion degrades to
        // `Unknown` promptly instead of hanging.
        if spec.deadline.is_some_and(|d| Instant::now() >= d) {
            self.timed_out = true;
            return Ok(());
        }
        // Chaos hook: fault injection at the point a buggy guard
        // evaluation would strike. Exercised by the worker-isolation
        // regression tests and the CI chaos-smoke job.
        let chaos = ex.checker.config.chaos;
        if chaos.panic_every > 0 {
            let tick = ex.chaos_ticks.fetch_add(1, Ordering::SeqCst) + 1;
            if tick.is_multiple_of(chaos.panic_every) {
                panic!("injected chaos panic at feasibility decision {tick}");
            }
        }
        // Feasibility pruning: if the base constraints of the prefix are
        // unsatisfiable, so is every extension.
        if !self.feasibility(enc, chain) {
            return Ok(());
        }
        ex.schemas.fetch_add(1, Ordering::Relaxed);
        self.schemas += 1;
        self.total_segments += enc.num_segments();

        // Query check on this prefix: the prefix is the whole run, so
        // the final context is authoritative for the tail. A skeleton
        // pass has no query — it only maps the feasible frontier.
        if let Some(plan) = spec.query {
            if self.query_pruned(enc, plan) {
                // The aggregated probe for this final context already
                // refutes the query: no schema ending here can violate
                // it, so the per-schema check is dischargeable.
                self.pruned_by_core += 1;
            } else {
                // Seed the case-split planner with the guards the
                // learned certificates keep refuting, so any boundary
                // disjunction the query emits fronts those branches.
                let query_span = holistic_obs::span("checker.query_check");
                enc.set_hot_guards(self.core_hot_guards());
                enc.push_query();
                enc.assert_tail_exact();
                plan.assert_query(enc, spec.info);
                let result = enc.check();
                enc.pop_query();
                drop(query_span);
                match result {
                    SatResult::Sat(model) => {
                        let run = enc.extract(&model);
                        self.violation =
                            Some((chain.clone(), Counterexample::replay(spec.ta, &run)?));
                        return Ok(());
                    }
                    SatResult::Unsat => {}
                    SatResult::Unknown(reason) => {
                        self.unknown.get_or_insert(reason.to_string());
                    }
                }
            }
        }

        // Extensions: non-empty subsets of the remaining guards, closed
        // under implication, statically unlockable after `ctx` — visited
        // in ascending order, so DFS preorder equals the lexicographic
        // chain order the cache replays in.
        let ctx = *chain.last().expect("chain is never empty");
        let remaining = ex.full & !ctx;
        if remaining == 0 {
            return Ok(());
        }
        let mut sub = 0u64;
        loop {
            sub = sub.wrapping_sub(remaining) & remaining;
            if sub == 0 {
                break;
            }
            let next = ctx | sub;
            if spec.info.can_unlock_set(sub, ctx) && spec.info.is_closed(next) {
                chain.push(next);
                let pruned = self.prune_before_push(chain);
                chain.pop();
                if pruned {
                    continue;
                }
                if ex.threads > 1
                    && ex.idle.load(Ordering::Relaxed) > 0
                    && !ex.stop.load(Ordering::Relaxed)
                {
                    // Someone is hungry: hand the subtree over instead
                    // of walking it (its feasibility is checked by the
                    // taker).
                    chain.push(next);
                    self.donate(chain);
                    chain.pop();
                } else {
                    enc.push_segments(SegmentKind::Fixed(next), spec.copies);
                    chain.push(next);
                    let r = self.recurse(enc, chain);
                    chain.pop();
                    enc.pop_segments();
                    r?;
                    if self.violation.is_some()
                        || self.capped
                        || self.timed_out
                        || ex.stop.load(Ordering::Relaxed)
                    {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }
}

/// The violation constraints shared by both strategies.
struct QueryPlan {
    globally_empty: Vec<LocationId>,
    initially: Prop,
    /// Unstable witnesses: must be asserted at *some* boundary, and each
    /// needs a dedicated segment split.
    witnesses: Vec<Prop>,
    /// Stable witnesses: once true they stay true, so asserting them at
    /// the final boundary is equivalent to `somewhere` — far cheaper (no
    /// boundary disjunction, no extra segment copies).
    stable_witnesses: Vec<Prop>,
    tail: Option<Prop>,
}

impl QueryPlan {
    fn new(ta: &ThresholdAutomaton, query: &Query, justice: &Justice) -> QueryPlan {
        match query {
            Query::Safety {
                globally_empty,
                initially,
                witnesses,
            } => {
                let (stable, unstable): (Vec<Prop>, Vec<Prop>) = witnesses
                    .iter()
                    .cloned()
                    .partition(|w| stability::is_stable(ta, w));
                QueryPlan {
                    globally_empty: globally_empty.clone(),
                    initially: initially.clone(),
                    witnesses: unstable,
                    stable_witnesses: stable,
                    tail: None,
                }
            }
            Query::Liveness {
                globally_empty,
                initially,
                tail,
            } => QueryPlan {
                globally_empty: globally_empty.clone(),
                initially: initially.clone(),
                witnesses: Vec::new(),
                stable_witnesses: Vec::new(),
                tail: Some(Prop::and([tail.clone(), justice.as_prop()])),
            },
        }
    }

    /// Asserts the witness/tail constraints (used by the monolithic
    /// strategy and, per prefix, by the DFS).
    ///
    /// Propositions evaluated at the final boundary are first partially
    /// evaluated against the final context (sound because
    /// [`Encoding::assert_tail_exact`] pins the truth of every
    /// vocabulary guard at the tail): this collapses the justice
    /// conjunction's `¬cond ∨ empty` disjunctions into linear
    /// constraints, avoiding exponential case splitting.
    fn assert_query(&self, enc: &mut Encoding<'_>, info: &GuardInfo) {
        // Register the query skeleton on first contact with this
        // encoding (once per exploration, and again after a tableau
        // rebuild); later asserts replay the cached per-boundary
        // encodings and only translate the boundaries added since.
        if enc.num_query_props() < self.witnesses.len() {
            for w in &self.witnesses {
                enc.register_query_prop(w);
            }
        }
        for slot in 0..self.witnesses.len() {
            enc.assert_query_prop_somewhere(slot);
        }
        let final_ctx = enc.final_context();
        let resolve = move |g: &holistic_ta::AtomicGuard| -> Option<bool> {
            let ctx = final_ctx?;
            let gi = info.index_of(g)?;
            Some(ctx & (1 << gi) != 0)
        };
        let last = enc.num_boundaries() - 1;
        for w in &self.stable_witnesses {
            let w = w.resolve_guards(&resolve);
            enc.assert_prop_at(&w, last);
        }
        if let Some(tail) = &self.tail {
            let tail = tail.resolve_guards(&resolve);
            enc.assert_prop_at(&tail, last);
        }
    }
}
