//! The parameterized model checker: public API and strategy driver.

use std::fmt;
use std::time::{Duration, Instant};

use holistic_lia::{SatResult, SolverConfig};
use holistic_ltl::{classify, stability, FragmentError, Justice, Ltl, Prop, Query};
use holistic_ta::{LocationId, ThresholdAutomaton, ValidationError};

use crate::counterexample::{Counterexample, ReplayError};
use crate::encode::{Encoding, SegmentKind};
use crate::guards::{GuardError, GuardInfo};

/// How schemas are generated for the SMT backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Run the pruned schedule DFS; fall back to
    /// [`Strategy::Monolithic`] if it hits the schema cap.
    #[default]
    Auto,
    /// Depth-first enumeration of monotone context schedules with
    /// incremental SMT feasibility pruning (one query per feasible
    /// schedule prefix) — the POPL'17 style; yields the per-property
    /// schema counts of the paper's Table 2.
    Enumerate,
    /// A single SMT query with symbolic contexts (`#guards + 1`
    /// segments, conditional guard constraints) — acceleration in the
    /// Para² style.
    Monolithic,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Auto => write!(f, "auto"),
            Strategy::Enumerate => write!(f, "enumerate"),
            Strategy::Monolithic => write!(f, "monolithic"),
        }
    }
}

/// Configuration of a [`Checker`].
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Cap on schemas explored by the DFS; beyond it, `Auto` falls back
    /// to the monolithic strategy and `Enumerate` reports `Unknown`.
    /// The paper's naive consensus automaton exceeds any practical cap
    /// (its Table 2 row reads ">100 000 schemas, timeout").
    pub max_schemas: usize,
    /// Wall-clock budget for one `check_ltl`/`check_query` call,
    /// complementing `max_schemas` (which bounds *work*, not *time* —
    /// schema cost varies by orders of magnitude across automata). When
    /// the budget runs out the exploration stops at the next schema
    /// boundary and the verdict degrades gracefully to
    /// [`Verdict::Unknown`]; already-found violations are still
    /// reported. `None` (the default) means unbounded. The naive
    /// consensus automaton of the paper's Table 2 is the intended
    /// customer: its ">24h timeout" row can be demonstrated in seconds.
    pub time_budget: Option<Duration>,
    /// Budgets for each SMT query.
    pub solver: SolverConfig,
    /// Strategy selection.
    pub strategy: Strategy,
}

impl Default for CheckerConfig {
    fn default() -> CheckerConfig {
        CheckerConfig {
            max_schemas: 100_000,
            time_budget: None,
            solver: SolverConfig::default(),
            strategy: Strategy::Auto,
        }
    }
}

/// The verdict for one property (or query).
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The property holds for **all** parameters admitted by the
    /// resilience condition.
    Verified,
    /// The property fails; a validated counterexample is attached.
    Violated(Box<Counterexample>),
    /// No verdict (solver budget or schema cap exhausted).
    Unknown(String),
}

impl Verdict {
    /// Whether the verdict is `Verified`.
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// Whether the verdict is `Violated`.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// The counterexample, if violated.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Violated(ce) => Some(ce),
            _ => None,
        }
    }
}

/// Statistics for one query, mirroring the columns of the paper's
/// Table 2.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Number of schemas (feasible schedule prefixes / SMT queries).
    pub schemas: usize,
    /// Average schema length (number of segments).
    pub avg_segments: f64,
    /// Wall-clock time.
    pub duration: Duration,
    /// Whether the DFS hit the schema cap.
    pub capped: bool,
    /// Whether the wall-clock budget ([`CheckerConfig::time_budget`])
    /// ran out before exploration finished.
    pub timed_out: bool,
    /// The strategy actually used.
    pub strategy: Strategy,
}

/// The outcome of checking a single [`Query`].
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Verdict.
    pub verdict: Verdict,
    /// Statistics.
    pub stats: QueryStats,
}

/// The outcome of checking an LTL property (one report per top-level
/// conjunct query).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Per-query reports.
    pub queries: Vec<QueryReport>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl CheckReport {
    /// The combined verdict: `Violated` dominates, then `Unknown`, then
    /// `Verified`.
    pub fn verdict(&self) -> Verdict {
        for q in &self.queries {
            if q.verdict.is_violated() {
                return q.verdict.clone();
            }
        }
        for q in &self.queries {
            if let Verdict::Unknown(r) = &q.verdict {
                return Verdict::Unknown(r.clone());
            }
        }
        Verdict::Verified
    }

    /// Total schemas across queries.
    pub fn total_schemas(&self) -> usize {
        self.queries.iter().map(|q| q.stats.schemas).sum()
    }

    /// Average schema length across queries.
    pub fn avg_segments(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.stats.avg_segments)
            .sum::<f64>()
            / self.queries.len() as f64
    }
}

/// Errors that prevent checking altogether (as opposed to `Unknown`
/// verdicts).
#[derive(Debug)]
pub enum CheckError {
    /// The automaton failed validation.
    Validation(ValidationError),
    /// The automaton is not a DAG (plus self-loops), which the schema
    /// theory requires.
    NotDag,
    /// Guard analysis failed (fall guards, too many guards).
    Guard(GuardError),
    /// The property is outside the checkable fragment.
    Fragment(FragmentError),
    /// A satisfying model failed concrete replay — an internal
    /// encoding/semantics mismatch.
    Replay(ReplayError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Validation(e) => write!(f, "invalid automaton: {e}"),
            CheckError::NotDag => write!(
                f,
                "automaton has a cycle among proper rules; the schema method needs a DAG"
            ),
            CheckError::Guard(e) => write!(f, "guard analysis: {e}"),
            CheckError::Fragment(e) => write!(f, "{e}"),
            CheckError::Replay(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<ValidationError> for CheckError {
    fn from(e: ValidationError) -> CheckError {
        CheckError::Validation(e)
    }
}

impl From<GuardError> for CheckError {
    fn from(e: GuardError) -> CheckError {
        CheckError::Guard(e)
    }
}

impl From<FragmentError> for CheckError {
    fn from(e: FragmentError) -> CheckError {
        CheckError::Fragment(e)
    }
}

impl From<ReplayError> for CheckError {
    fn from(e: ReplayError) -> CheckError {
        CheckError::Replay(e)
    }
}

/// The parameterized model checker.
///
/// # Examples
///
/// ```
/// use holistic_checker::Checker;
/// use holistic_ltl::{Justice, Ltl, Prop};
/// use holistic_ta::parse_ta;
///
/// let ta = parse_ta(
///     "automaton echo {
///          params n, t, f;
///          shared e;
///          resilience n > 3t, t >= f, f >= 0;
///          processes n - f;
///          initial V;
///          final D;
///          rule send: V -> D when true do e += 1;
///      }",
/// )?;
/// let v = ta.location_by_name("V").unwrap();
/// // Termination: eventually everyone has sent (left V).
/// let spec = Ltl::eventually(Ltl::state(Prop::loc_empty(v)));
/// let checker = Checker::new();
/// let report = checker.check_ltl(&ta, &spec, &Justice::from_rules(&ta))?;
/// assert!(report.verdict().is_verified());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Checker {
    config: CheckerConfig,
}

impl Checker {
    /// A checker with default configuration.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker with explicit configuration.
    pub fn with_config(config: CheckerConfig) -> Checker {
        Checker { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Checks an LTL property of the automaton for **all** parameter
    /// valuations admitted by the resilience condition, under the given
    /// justice assumption (used by liveness queries only).
    ///
    /// # Errors
    ///
    /// [`CheckError`] when the automaton or formula is outside the
    /// supported class; budget problems surface as
    /// [`Verdict::Unknown`] instead.
    pub fn check_ltl(
        &self,
        ta: &ThresholdAutomaton,
        formula: &Ltl,
        justice: &Justice,
    ) -> Result<CheckReport, CheckError> {
        let start = Instant::now();
        // One wall-clock budget for the whole call, shared by all
        // conjunct queries.
        let deadline = self.config.time_budget.map(|b| start + b);
        ta.validate()?;
        if !ta.is_dag() {
            return Err(CheckError::NotDag);
        }
        let queries = classify(ta, formula)?;
        let mut reports = Vec::with_capacity(queries.len());
        for q in &queries {
            reports.push(self.run_query(ta, q, justice, deadline)?);
        }
        Ok(CheckReport {
            queries: reports,
            duration: start.elapsed(),
        })
    }

    /// Checks a single pre-classified query.
    ///
    /// # Errors
    ///
    /// See [`check_ltl`](Checker::check_ltl).
    pub fn check_query(
        &self,
        ta: &ThresholdAutomaton,
        query: &Query,
        justice: &Justice,
    ) -> Result<QueryReport, CheckError> {
        ta.validate()?;
        if !ta.is_dag() {
            return Err(CheckError::NotDag);
        }
        let deadline = self.config.time_budget.map(|b| Instant::now() + b);
        self.run_query(ta, query, justice, deadline)
    }

    fn run_query(
        &self,
        ta: &ThresholdAutomaton,
        query: &Query,
        justice: &Justice,
        deadline: Option<Instant>,
    ) -> Result<QueryReport, CheckError> {
        let start = Instant::now();
        let plan = QueryPlan::new(ta, query, justice);
        // The context vocabulary is the automaton's rule guards: schema
        // contexts decide their truth at the tail, so justice and tail
        // propositions over them partially evaluate into plain
        // conjunctions. (Threshold atoms that appear only in the
        // property/justice — e.g. BV-Obligation's `b0 ≥ t+1` — stay
        // symbolic: adding them to the vocabulary would blow up the
        // schedule lattice for no pruning gain.)
        let info = GuardInfo::analyse(ta)?;
        match self.config.strategy {
            Strategy::Monolithic => self.run_monolithic(ta, &info, &plan, start, deadline),
            Strategy::Enumerate | Strategy::Auto => self.run_dfs(ta, &info, &plan, start, deadline),
        }
    }

    /// Depth-first schedule exploration with incremental feasibility
    /// pruning: a schedule prefix whose base constraints are already
    /// unsatisfiable cannot support any extension (extensions only add
    /// constraints), so its whole subtree is skipped.
    fn run_dfs(
        &self,
        ta: &ThresholdAutomaton,
        info: &GuardInfo,
        plan: &QueryPlan,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<QueryReport, CheckError> {
        let mut enc = Encoding::new(ta, info, &plan.globally_empty, self.config.solver);
        enc.assert_prop_at(&plan.initially, 0);
        let copies = plan.witnesses.len() + 1;

        let full: u64 = if info.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << info.len()) - 1
        };
        let mut dfs = Dfs {
            checker: self,
            ta,
            info,
            plan,
            copies,
            full,
            deadline,
            schemas: 0,
            total_segments: 0,
            capped: false,
            timed_out: false,
            violation: None,
            unknown: None,
            frontier: Vec::new(),
        };

        // Initial contexts: closed subsets of the initially-possible
        // guards (usually just ∅).
        let mut initial_contexts = Vec::new();
        let universe = info.initially_possible;
        let mut sub = universe;
        loop {
            if info.is_closed(sub) {
                initial_contexts.push(sub);
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & universe;
        }
        initial_contexts.sort_unstable();

        for &c0 in &initial_contexts {
            enc.push_segments(SegmentKind::Fixed(c0), copies);
            dfs.recurse(&mut enc, c0, 0)?;
            enc.pop_segments();
            if dfs.violation.is_some() || dfs.capped || dfs.timed_out {
                break;
            }
        }

        // Drain the parallel frontier: subtrees cut off at depth
        // PARALLEL_DEPTH are explored by worker threads, each with its
        // own encoding.
        if dfs.violation.is_none() && !dfs.capped && !dfs.timed_out && !dfs.frontier.is_empty() {
            let frontier = std::mem::take(&mut dfs.frontier);
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(frontier.len());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let stop = std::sync::atomic::AtomicBool::new(false);
            let results: std::sync::Mutex<Vec<Dfs<'_>>> = std::sync::Mutex::new(Vec::new());
            let next_ref = &next;
            let stop_ref = &stop;
            let results_ref = &results;
            let frontier_ref = &frontier;
            let plan_ref = plan;
            let checker = self;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(move || {
                        let mut worker = Dfs {
                            checker,
                            ta,
                            info,
                            plan: plan_ref,
                            copies,
                            full,
                            deadline,
                            schemas: 0,
                            total_segments: 0,
                            capped: false,
                            timed_out: false,
                            violation: None,
                            unknown: None,
                            frontier: Vec::new(),
                        };
                        let mut enc = Encoding::new(
                            ta,
                            info,
                            &plan_ref.globally_empty,
                            checker.config.solver,
                        );
                        enc.assert_prop_at(&plan_ref.initially, 0);
                        loop {
                            let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= frontier_ref.len()
                                || stop_ref.load(std::sync::atomic::Ordering::Relaxed)
                            {
                                break;
                            }
                            let prefix = &frontier_ref[i];
                            for &ctx in prefix {
                                enc.push_segments(SegmentKind::Fixed(ctx), copies);
                            }
                            // Workers never re-split: depth starts past
                            // the split threshold.
                            let r = worker.recurse(&mut enc, *prefix.last().unwrap(), usize::MAX);
                            for _ in prefix {
                                enc.pop_segments();
                            }
                            if r.is_err()
                                || worker.violation.is_some()
                                || worker.capped
                                || worker.timed_out
                            {
                                stop_ref.store(true, std::sync::atomic::Ordering::Relaxed);
                                if let Err(e) = r {
                                    worker.unknown.get_or_insert(format!("worker error: {e}"));
                                }
                                break;
                            }
                        }
                        results_ref.lock().unwrap().push(worker);
                    });
                }
            });
            for w in results.into_inner().unwrap() {
                dfs.schemas += w.schemas;
                dfs.total_segments += w.total_segments;
                dfs.capped |= w.capped;
                dfs.timed_out |= w.timed_out;
                if dfs.violation.is_none() {
                    dfs.violation = w.violation;
                }
                if dfs.unknown.is_none() {
                    dfs.unknown = w.unknown;
                }
            }
        }

        let stats = QueryStats {
            schemas: dfs.schemas,
            avg_segments: if dfs.schemas == 0 {
                0.0
            } else {
                dfs.total_segments as f64 / dfs.schemas as f64
            },
            duration: start.elapsed(),
            capped: dfs.capped,
            timed_out: dfs.timed_out,
            strategy: Strategy::Enumerate,
        };
        let verdict = if let Some(ce) = dfs.violation {
            // A violation found before the budget ran out is still a
            // violation: time pressure never weakens a verdict we have.
            Verdict::Violated(Box::new(ce))
        } else if dfs.timed_out {
            Verdict::Unknown(format!(
                "time budget of {:?} exhausted after {} schemas",
                self.config.time_budget.unwrap_or_default(),
                dfs.schemas
            ))
        } else if dfs.capped {
            Verdict::Unknown(format!(
                "schedule DFS exceeded the cap of {} schemas",
                self.config.max_schemas
            ))
        } else if let Some(reason) = dfs.unknown {
            Verdict::Unknown(reason)
        } else {
            Verdict::Verified
        };
        Ok(QueryReport { verdict, stats })
    }

    fn run_monolithic(
        &self,
        ta: &ThresholdAutomaton,
        info: &GuardInfo,
        plan: &QueryPlan,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<QueryReport, CheckError> {
        // The monolithic strategy is a single SMT call; the wall-clock
        // budget is only consulted at the query boundary (the call
        // itself is bounded by the solver's own budgets).
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(QueryReport {
                verdict: Verdict::Unknown(format!(
                    "time budget of {:?} exhausted before the monolithic query",
                    self.config.time_budget.unwrap_or_default()
                )),
                stats: QueryStats {
                    schemas: 0,
                    avg_segments: 0.0,
                    duration: start.elapsed(),
                    capped: false,
                    timed_out: true,
                    strategy: Strategy::Monolithic,
                },
            });
        }
        let num_segments = info.len() + 1 + plan.witnesses.len();
        let segments = vec![SegmentKind::Free; num_segments];
        let mut enc = Encoding::with_segments(
            ta,
            info,
            &segments,
            &plan.globally_empty,
            self.config.solver,
        );
        enc.assert_prop_at(&plan.initially, 0);
        plan.assert_query(&mut enc, info);
        let result = enc.check();
        let stats = QueryStats {
            schemas: 1,
            avg_segments: num_segments as f64,
            duration: start.elapsed(),
            capped: false,
            timed_out: false,
            strategy: Strategy::Monolithic,
        };
        let verdict = match result {
            SatResult::Sat(model) => {
                let run = enc.extract(&model);
                Verdict::Violated(Box::new(Counterexample::replay(ta, &run)?))
            }
            SatResult::Unsat => Verdict::Verified,
            SatResult::Unknown(reason) => Verdict::Unknown(reason.to_string()),
        };
        Ok(QueryReport { verdict, stats })
    }
}

struct Dfs<'a> {
    checker: &'a Checker,
    ta: &'a ThresholdAutomaton,
    info: &'a GuardInfo,
    plan: &'a QueryPlan,
    copies: usize,
    full: u64,
    deadline: Option<Instant>,
    schemas: usize,
    total_segments: usize,
    capped: bool,
    timed_out: bool,
    violation: Option<Counterexample>,
    unknown: Option<String>,
    /// Subtree roots deferred to the worker pool (context prefixes,
    /// excluding the synthetic root).
    frontier: Vec<Vec<u64>>,
}

impl Dfs<'_> {
    /// Depth at which subtrees are deferred to the parallel frontier.
    const PARALLEL_DEPTH: usize = 2;

    /// Precondition: `enc` holds the segments of the current prefix,
    /// whose last context is `ctx`. `depth` counts context steps from
    /// the initial context.
    fn recurse(
        &mut self,
        enc: &mut Encoding<'_>,
        ctx: u64,
        depth: usize,
    ) -> Result<(), CheckError> {
        if self.schemas >= self.checker.config.max_schemas {
            self.capped = true;
            return Ok(());
        }
        // The budget is checked once per schema: between checks the
        // longest uninterruptible stretch is a single SMT query, itself
        // bounded by the solver's budgets — so exhaustion degrades to
        // `Unknown` promptly instead of hanging.
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.timed_out = true;
            return Ok(());
        }
        // Feasibility pruning: if the base constraints of the prefix are
        // unsatisfiable, so is every extension.
        match enc.check() {
            SatResult::Unsat => return Ok(()),
            SatResult::Sat(_) => {}
            SatResult::Unknown(reason) => {
                // Cannot prune, cannot trust: record and keep exploring
                // extensions conservatively.
                self.unknown.get_or_insert(reason.to_string());
            }
        }
        self.schemas += 1;
        self.total_segments += enc.num_segments();

        // Query check on this prefix: the prefix is the whole run, so
        // the final context is authoritative for the tail.
        enc.push_query();
        enc.assert_tail_exact();
        self.plan.assert_query(enc, self.info);
        let result = enc.check();
        enc.pop_query();
        match result {
            SatResult::Sat(model) => {
                let run = enc.extract(&model);
                self.violation = Some(Counterexample::replay(self.ta, &run)?);
                return Ok(());
            }
            SatResult::Unsat => {}
            SatResult::Unknown(reason) => {
                self.unknown.get_or_insert(reason.to_string());
            }
        }

        // Extensions: non-empty subsets of the remaining guards, closed
        // under implication, statically unlockable after `ctx`.
        let remaining = self.full & !ctx;
        if remaining == 0 {
            return Ok(());
        }
        let mut sub = remaining;
        loop {
            let next = ctx | sub;
            if self.info.can_unlock_set(sub, ctx) && self.info.is_closed(next) {
                if depth.saturating_add(1) == Self::PARALLEL_DEPTH {
                    // Defer to the worker pool; feasibility of the
                    // extension is re-checked by the worker.
                    let mut prefix = enc.context_prefix();
                    prefix.push(next);
                    self.frontier.push(prefix);
                } else {
                    enc.push_segments(SegmentKind::Fixed(next), self.copies);
                    self.recurse(enc, next, depth.saturating_add(1))?;
                    enc.pop_segments();
                    if self.violation.is_some() || self.capped || self.timed_out {
                        return Ok(());
                    }
                }
            }
            sub = (sub - 1) & remaining;
            if sub == 0 {
                break;
            }
        }
        Ok(())
    }
}

/// The violation constraints shared by both strategies.
struct QueryPlan {
    globally_empty: Vec<LocationId>,
    initially: Prop,
    /// Unstable witnesses: must be asserted at *some* boundary, and each
    /// needs a dedicated segment split.
    witnesses: Vec<Prop>,
    /// Stable witnesses: once true they stay true, so asserting them at
    /// the final boundary is equivalent to `somewhere` — far cheaper (no
    /// boundary disjunction, no extra segment copies).
    stable_witnesses: Vec<Prop>,
    tail: Option<Prop>,
}

impl QueryPlan {
    fn new(ta: &ThresholdAutomaton, query: &Query, justice: &Justice) -> QueryPlan {
        match query {
            Query::Safety {
                globally_empty,
                initially,
                witnesses,
            } => {
                let (stable, unstable): (Vec<Prop>, Vec<Prop>) = witnesses
                    .iter()
                    .cloned()
                    .partition(|w| stability::is_stable(ta, w));
                QueryPlan {
                    globally_empty: globally_empty.clone(),
                    initially: initially.clone(),
                    witnesses: unstable,
                    stable_witnesses: stable,
                    tail: None,
                }
            }
            Query::Liveness {
                globally_empty,
                initially,
                tail,
            } => QueryPlan {
                globally_empty: globally_empty.clone(),
                initially: initially.clone(),
                witnesses: Vec::new(),
                stable_witnesses: Vec::new(),
                tail: Some(Prop::and([tail.clone(), justice.as_prop()])),
            },
        }
    }

    /// Asserts the witness/tail constraints (used by the monolithic
    /// strategy and, per prefix, by the DFS).
    ///
    /// Propositions evaluated at the final boundary are first partially
    /// evaluated against the final context (sound because
    /// [`Encoding::assert_tail_exact`] pins the truth of every
    /// vocabulary guard at the tail): this collapses the justice
    /// conjunction's `¬cond ∨ empty` disjunctions into linear
    /// constraints, avoiding exponential case splitting.
    fn assert_query(&self, enc: &mut Encoding<'_>, info: &GuardInfo) {
        for w in &self.witnesses {
            enc.assert_prop_somewhere(w);
        }
        let final_ctx = enc.final_context();
        let resolve = move |g: &holistic_ta::AtomicGuard| -> Option<bool> {
            let ctx = final_ctx?;
            let gi = info.index_of(g)?;
            Some(ctx & (1 << gi) != 0)
        };
        let last = enc.num_boundaries() - 1;
        for w in &self.stable_witnesses {
            let w = w.resolve_guards(&resolve);
            enc.assert_prop_at(&w, last);
        }
        if let Some(tail) = &self.tail {
            let tail = tail.resolve_guards(&resolve);
            enc.assert_prop_at(&tail, last);
        }
    }
}
