//! Counterexample reconstruction and validation.
//!
//! A satisfying model of a schema encoding is only a *claimed* witness;
//! before reporting it, the checker **replays** it through the concrete
//! counter-system semantics ([`holistic_ta::CounterSystem`]) — every
//! accelerated firing is expanded into single steps and re-checked
//! against guards and counters. A replay failure indicates an encoding
//! bug and is reported as an internal error rather than a verdict.

use std::fmt;

use holistic_ta::{Config, CounterSystem, RuleId, ThresholdAutomaton};

use crate::encode::SymbolicRun;

/// One accelerated step of a counterexample.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CeStep {
    /// Schema segment the step belongs to.
    pub segment: usize,
    /// The rule fired.
    pub rule: RuleId,
    /// How many processes take it (acceleration factor).
    pub times: u64,
}

/// A validated counterexample: concrete parameters, an initial
/// configuration, and a firing sequence that exhibits the violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Concrete parameter values (e.g. `n, t, f`).
    pub params: Vec<i64>,
    /// The initial configuration.
    pub initial: Config,
    /// The accelerated firing sequence.
    pub steps: Vec<CeStep>,
    /// Configurations at schema boundaries (`boundaries[0] == initial`,
    /// last is the final configuration).
    pub boundaries: Vec<Config>,
}

/// Replay failure: the model did not correspond to a legal run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayError {
    /// Description of the illegal step.
    pub message: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "counterexample replay failed: {}", self.message)
    }
}

impl std::error::Error for ReplayError {}

impl Counterexample {
    /// Replays a symbolic run through the concrete semantics.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] if any firing is illegal — which means the SMT
    /// encoding and the semantics disagree (an internal bug, surfaced
    /// loudly instead of silently reporting a bogus trace).
    pub fn replay(
        ta: &ThresholdAutomaton,
        run: &SymbolicRun,
    ) -> Result<Counterexample, ReplayError> {
        let sys = CounterSystem::new(ta, &run.params).map_err(|e| ReplayError {
            message: format!("bad parameters {:?}: {e}", run.params),
        })?;
        let initial = Config {
            counters: run.init.clone(),
            shared: vec![0; ta.variables.len()],
        };
        if initial.counters.iter().sum::<i64>() != sys.size() {
            return Err(ReplayError {
                message: format!(
                    "initial counters sum to {}, expected {} processes",
                    initial.counters.iter().sum::<i64>(),
                    sys.size()
                ),
            });
        }
        let mut current = initial.clone();
        let mut steps = Vec::new();
        let mut boundaries = vec![initial.clone()];
        for (segment, seg_steps) in run.steps.iter().enumerate() {
            for &(rule, times) in seg_steps {
                for k in 0..times {
                    if !sys.is_enabled(&current, rule) {
                        return Err(ReplayError {
                            message: format!(
                                "rule {} not enabled at firing {}/{} in segment {}",
                                ta.rules[rule.0].name,
                                k + 1,
                                times,
                                segment
                            ),
                        });
                    }
                    current = sys.apply(&current, rule);
                }
                steps.push(CeStep {
                    segment,
                    rule,
                    times,
                });
            }
            boundaries.push(current.clone());
        }
        Ok(Counterexample {
            params: run.params.clone(),
            initial,
            steps,
            boundaries,
        })
    }

    /// Expands the accelerated firing sequence into the full
    /// single-step configuration trace: entry 0 is the initial
    /// configuration, and every subsequent entry is the result of one
    /// process taking one rule. Each firing is re-checked against the
    /// concrete counter-system semantics and the final configuration is
    /// cross-checked against the recorded boundary, so a successful
    /// expansion is an independent certificate that the counterexample
    /// is a legal run. Downstream replay assertions (the mutation
    /// harness's "no vacuous kills" check) evaluate properties on this
    /// trace.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] if a firing is disabled or the replayed final
    /// configuration diverges from the recorded one.
    pub fn trace(&self, ta: &ThresholdAutomaton) -> Result<Vec<Config>, ReplayError> {
        let sys = CounterSystem::new(ta, &self.params).map_err(|e| ReplayError {
            message: format!("bad parameters {:?}: {e}", self.params),
        })?;
        let mut configs = vec![self.initial.clone()];
        let mut current = self.initial.clone();
        for step in &self.steps {
            for k in 0..step.times {
                if !sys.is_enabled(&current, step.rule) {
                    return Err(ReplayError {
                        message: format!(
                            "rule {} not enabled at firing {}/{} in segment {}",
                            ta.rules[step.rule.0].name,
                            k + 1,
                            step.times,
                            step.segment
                        ),
                    });
                }
                current = sys.apply(&current, step.rule);
                configs.push(current.clone());
            }
        }
        if &current != self.final_config() {
            return Err(ReplayError {
                message: "expanded trace diverges from the recorded final boundary".to_owned(),
            });
        }
        Ok(configs)
    }

    /// The final configuration.
    pub fn final_config(&self) -> &Config {
        self.boundaries
            .last()
            .expect("at least the initial boundary")
    }

    /// Renders the counterexample with the automaton's names.
    pub fn display<'a>(&'a self, ta: &'a ThresholdAutomaton) -> impl fmt::Display + 'a {
        DisplayCe { ce: self, ta }
    }
}

struct DisplayCe<'a> {
    ce: &'a Counterexample,
    ta: &'a ThresholdAutomaton,
}

impl fmt::Display for DisplayCe<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ta = self.ta;
        write!(f, "parameters:")?;
        for (name, value) in ta.params.iter().zip(&self.ce.params) {
            write!(f, " {name}={value}")?;
        }
        writeln!(f)?;
        write!(f, "initial:")?;
        for (i, &c) in self.ce.initial.counters.iter().enumerate() {
            if c != 0 {
                write!(f, " {}×{}", c, ta.locations[i].name)?;
            }
        }
        writeln!(f)?;
        let mut seg = usize::MAX;
        for step in &self.ce.steps {
            if step.segment != seg {
                seg = step.segment;
                writeln!(f, "segment {seg}:")?;
            }
            let rule = &ta.rules[step.rule.0];
            writeln!(
                f,
                "  {} × {}  ({} -> {})",
                rule.name, step.times, ta.locations[rule.from.0].name, ta.locations[rule.to.0].name
            )?;
        }
        let last = self.ce.final_config();
        write!(f, "final:")?;
        for (i, &c) in last.counters.iter().enumerate() {
            if c != 0 {
                write!(f, " {}×{}", c, ta.locations[i].name)?;
            }
        }
        writeln!(f)?;
        write!(f, "shared:")?;
        for (i, &v) in last.shared.iter().enumerate() {
            write!(f, " {}={}", ta.variables[i], v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{Guard, TaBuilder};

    fn ta() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("t");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always()).inc(x, 1);
        b.build().unwrap()
    }

    #[test]
    fn replay_accepts_legal_run() {
        let ta = ta();
        let run = SymbolicRun {
            params: vec![3, 1],
            init: vec![2, 0],
            steps: vec![vec![(RuleId(0), 2)]],
        };
        let ce = Counterexample::replay(&ta, &run).expect("legal run");
        assert_eq!(ce.final_config().counters, vec![0, 2]);
        assert_eq!(ce.final_config().shared, vec![2]);
        assert_eq!(ce.boundaries.len(), 2);
        let text = ce.display(&ta).to_string();
        assert!(text.contains("n=3"), "{text}");
        assert!(text.contains("r1 × 2"), "{text}");
    }

    #[test]
    fn replay_rejects_overdraft() {
        let ta = ta();
        let run = SymbolicRun {
            params: vec![3, 1],
            init: vec![2, 0],
            steps: vec![vec![(RuleId(0), 3)]],
        };
        let err = Counterexample::replay(&ta, &run).unwrap_err();
        assert!(err.message.contains("not enabled"), "{err}");
    }

    #[test]
    fn replay_rejects_wrong_process_count() {
        let ta = ta();
        let run = SymbolicRun {
            params: vec![3, 1],
            init: vec![5, 0],
            steps: vec![],
        };
        assert!(Counterexample::replay(&ta, &run).is_err());
    }
}
