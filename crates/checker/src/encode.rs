//! Per-schema SMT encoding, built incrementally.
//!
//! A *schema* is a sequence of segments. Within a segment the set of
//! usable rules is fixed, every usable rule fires an *accelerated*,
//! non-negative number of times (its **factor**), and rules are grouped
//! in a topological order of the location DAG. The encoding is exact
//! for the increment-only DAG class:
//!
//! * within a fixed context all enabled firings commute, so any segment
//!   of a real run can be reordered into the grouped topological form;
//! * token feasibility of the grouped form is captured by prefix-sum
//!   **availability** constraints (source counter just before a rule's
//!   block must cover its factor);
//! * shared variables and location counters at each segment boundary are
//!   linear expressions in the factors and initial counters, so guard
//!   unlocking and property evaluation are linear constraints.
//!
//! The encoding grows and shrinks **incrementally**
//! ([`push_segments`](Encoding::push_segments) /
//! [`pop_segments`](Encoding::pop_segments)): the schedule DFS of the
//! checker extends a feasible prefix one context at a time and prunes
//! entire subtrees when the prefix is already infeasible — the pruning
//! that keeps the schema count near the handful the paper reports,
//! instead of the factorial lattice size.
//!
//! Two segment flavours share the machinery: [`SegmentKind::Fixed`]
//! carries an explicit context bitmask (the enumerative strategy), and
//! [`SegmentKind::Free`] leaves the context symbolic, gating each rule
//! by a conditional `factor = 0 ∨ guard holds at segment start`
//! disjunction (the monolithic strategy).

use std::collections::HashMap;

use holistic_lia::{Constraint, Formula, LinExpr, Model, SatResult, Solver, SolverConfig, Var};
use holistic_ltl::{Prop, StateAtom};
use holistic_ta::{AtomicGuard, LocationId, RuleId, ThresholdAutomaton, VarId};

use crate::guards::{param_expr_to_lin, resilience_constraint, GuardInfo};

/// Where an encoded assertion came from — recorded per tracked assertion
/// so UNSAT cores can be projected onto schedule-lattice structure.
///
/// The split decides which cores *generalize*: a core whose members are
/// all position-independent (parameters, initial distribution,
/// availability) plus guard-entry facts of the **final** boundary
/// transfers to every sibling extension (see
/// [`Encoding::unsat_core_pattern`] for the argument); anything
/// position-specific (locked-guard-false at an intermediate boundary,
/// guard entry mid-chain) pins the core to one chain and blocks
/// generalization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Resilience condition over the parameters.
    Param,
    /// Initial distribution (counter sum == system size) or an
    /// `initially` proposition asserted at boundary 0.
    Init,
    /// Prefix-sum availability constraint inside segment `seg`.
    Avail {
        /// Segment index the constraint belongs to.
        seg: usize,
    },
    /// A guard newly unlocked at the entry boundary of segment `seg`
    /// must hold there.
    GuardEntry {
        /// Segment whose entry boundary carries the constraint.
        seg: usize,
        /// Guard index in [`GuardInfo`] order.
        guard: usize,
    },
    /// A still-locked guard must be false at the entry boundary of
    /// segment `seg`.
    LockedFalse {
        /// Segment whose entry boundary carries the constraint.
        seg: usize,
        /// Guard index in [`GuardInfo`] order.
        guard: usize,
    },
    /// Probe-only: a guard already unlocked in the probed prefix
    /// context, asserted to (still) hold at the probe's final boundary.
    /// Sound for monotone rise guards only — increment-only updates
    /// and non-negative guard coefficients mean the condition never
    /// decays once crossed (see
    /// [`Encoding::probe_core_pattern`]).
    GuardHeld {
        /// Guard index in [`GuardInfo`] order.
        guard: usize,
    },
}

/// How a segment's context is handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegmentKind {
    /// The context (bitmask of unlocked guards) is fixed by enumeration.
    Fixed(u64),
    /// The context is symbolic; rules carry conditional guard
    /// constraints.
    Free,
}

/// An incrementally growable SMT encoding of a schema prefix plus query
/// constraints.
pub struct Encoding<'a> {
    ta: &'a ThresholdAutomaton,
    info: &'a GuardInfo,
    solver: Solver,
    params: Vec<Var>,
    /// Initial counter expression per location (a variable for initial
    /// locations, the constant 0 otherwise).
    init: Vec<LinExpr>,
    /// Per segment: `(rule, factor var)` in topological firing order.
    factors: Vec<Vec<(RuleId, Var)>>,
    segments: Vec<SegmentKind>,
    /// Segment counts of each push, for popping.
    push_sizes: Vec<usize>,
    topo: Vec<RuleId>,
    banned: Vec<bool>,
    /// `counter_exprs[b][loc]` = counter of `loc` at boundary `b`.
    /// Extended by [`push_one`](Encoding::push_one), truncated by
    /// [`pop_segments`](Encoding::pop_segments); replaces the former
    /// O(boundary × rules) recomputation on every lookup.
    counter_exprs: Vec<Vec<LinExpr>>,
    /// `shared_exprs[b][v]` = value of shared variable `v` at boundary
    /// `b`; maintained like `counter_exprs`.
    shared_exprs: Vec<Vec<LinExpr>>,
    /// Query skeleton: witness propositions registered once per
    /// exploration (see
    /// [`register_query_prop`](Encoding::register_query_prop)).
    query_props: Vec<Prop>,
    /// `query_forms[s][b]` = the translated formula of query prop `s` at
    /// boundary `b`. Filled lazily: re-asserting the query at a deeper
    /// lattice node only encodes the *new* boundaries (the per-schema
    /// delta); shared-prefix boundaries replay their cached encodings.
    /// Truncated with the boundaries on [`pop_segments`], since a later
    /// push can give the same boundary index different factor variables.
    query_forms: Vec<Vec<Formula>>,
    /// Provenance per tracked assertion id. Append-only: popped ids are
    /// simply never asked for again (the solver only reports live ids),
    /// and the encoding is rebuilt wholesale often enough (tableau
    /// rebuild threshold) that the map cannot grow without bound.
    provenance: HashMap<u32, Provenance>,
    /// Inside a query level ([`push_query`](Encoding::push_query)):
    /// assertions are query-specific, not structural, and are left
    /// untracked — they never participate in feasibility cores.
    in_query: bool,
    /// Case-split planner bias: guard bits that recur in learned
    /// Farkas-certificate core patterns (the union of their `held` and
    /// `delta` components), set by the checker as cores are learned.
    /// See [`plan_disjuncts`](Encoding::plan_disjuncts).
    hot_guards: u64,
}

impl<'a> Encoding<'a> {
    /// Builds the base encoding (no segments yet): parameters and
    /// resilience, and the initial distribution over initial locations.
    ///
    /// `globally_empty` locations are forced empty for the entire run:
    /// their initial counters are zero and every rule entering or
    /// leaving them is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the automaton is not a DAG (callers check this first).
    pub fn new(
        ta: &'a ThresholdAutomaton,
        info: &'a GuardInfo,
        globally_empty: &[LocationId],
        solver_config: SolverConfig,
    ) -> Encoding<'a> {
        let mut solver = Solver::with_config(solver_config);
        let mut provenance = HashMap::new();
        let params: Vec<Var> = ta
            .params
            .iter()
            .map(|p| solver.new_nonneg_var(p.clone()))
            .collect();
        for c in &ta.resilience {
            let id = solver.assert_constraint_tracked(resilience_constraint(c, &params));
            provenance.insert(id.0, Provenance::Param);
        }

        let mut banned = vec![false; ta.locations.len()];
        for l in globally_empty {
            banned[l.0] = true;
        }

        let mut init = Vec::with_capacity(ta.locations.len());
        let mut sum = LinExpr::zero();
        for (i, loc) in ta.locations.iter().enumerate() {
            if loc.initial && !banned[i] {
                let v = solver.new_nonneg_var(format!("k0_{}", loc.name));
                init.push(LinExpr::var(v));
                sum += LinExpr::var(v);
            } else {
                init.push(LinExpr::zero());
            }
        }
        let id = solver.assert_constraint_tracked(Constraint::eq(
            sum,
            param_expr_to_lin(&ta.size_expr, &params),
        ));
        provenance.insert(id.0, Provenance::Init);

        let topo = ta
            .topological_rules()
            .expect("checker requires a DAG automaton");

        let counter_exprs = vec![init.clone()];
        let shared_exprs = vec![vec![LinExpr::zero(); ta.variables.len()]];

        Encoding {
            ta,
            info,
            solver,
            params,
            init,
            factors: Vec::new(),
            segments: Vec::new(),
            push_sizes: Vec::new(),
            topo,
            banned,
            counter_exprs,
            shared_exprs,
            query_props: Vec::new(),
            query_forms: Vec::new(),
            provenance,
            in_query: false,
            hot_guards: 0,
        }
    }

    /// Convenience: builds the base encoding and pushes all `segments`
    /// at once.
    pub fn with_segments(
        ta: &'a ThresholdAutomaton,
        info: &'a GuardInfo,
        segments: &[SegmentKind],
        globally_empty: &[LocationId],
        solver_config: SolverConfig,
    ) -> Encoding<'a> {
        let mut enc = Encoding::new(ta, info, globally_empty, solver_config);
        for &s in segments {
            enc.push_segments(s, 1);
        }
        enc
    }

    /// Appends `count` segments of the given kind, opening one solver
    /// level (popped by [`pop_segments`](Encoding::pop_segments)).
    ///
    /// For a [`SegmentKind::Fixed`] context, the guards that are newly
    /// unlocked relative to the previous segment's context must hold at
    /// the entry boundary; rules whose guards are not in the context get
    /// no factors. For [`SegmentKind::Free`], every rule gets a factor
    /// gated by a `factor = 0 ∨ guard@entry` disjunction.
    pub fn push_segments(&mut self, kind: SegmentKind, count: usize) {
        self.solver.push();
        self.push_sizes.push(count);
        for _ in 0..count {
            self.push_one(kind);
        }
    }

    fn push_one(&mut self, kind: SegmentKind) {
        let prev_ctx = self.segments.last().map(|s| match s {
            SegmentKind::Fixed(c) => *c,
            SegmentKind::Free => u64::MAX,
        });
        let si = self.push_body(kind);

        // Guard constraints at the entry boundary `si`: newly unlocked
        // guards hold there; locked guards are still false there (their
        // threshold may only be crossed *during* this segment, which is
        // exactly when the next context takes over). The locked-false
        // constraints keep the context semantics exact, which both
        // sharpens DFS pruning and lets the final context decide every
        // vocabulary atom at the tail.
        let info = self.info;
        match kind {
            SegmentKind::Fixed(ctx) => {
                let newly = match prev_ctx {
                    Some(p) if p != u64::MAX => ctx & !p,
                    Some(_) => 0, // after a Free segment nothing is "new"
                    None => ctx,
                };
                for (gi, g) in info.guards.iter().enumerate() {
                    if newly & (1 << gi) != 0 {
                        let c = self.guard_at_interned(g, si);
                        let id = self.solver.assert_tracked(Formula::atom(c));
                        self.provenance
                            .insert(id.0, Provenance::GuardEntry { seg: si, guard: gi });
                    } else if ctx & (1 << gi) == 0 {
                        let c = self.guard_at_interned(g, si);
                        let id = self.solver.assert_tracked(Formula::not(Formula::atom(c)));
                        self.provenance
                            .insert(id.0, Provenance::LockedFalse { seg: si, guard: gi });
                    }
                }
            }
            SegmentKind::Free => {
                let seg = self.factors[si].clone();
                for (r, x) in seg {
                    let rule = &self.ta.rules[r.0];
                    if rule.guard.is_true() {
                        continue;
                    }
                    let atoms = rule.guard.atoms().to_vec();
                    let holds = Formula::and(
                        atoms
                            .iter()
                            .map(|g| Formula::atom(self.guard_at_interned(g, si))),
                    );
                    let f = Formula::or([
                        Formula::atom(Constraint::le(LinExpr::var(x), LinExpr::constant(0))),
                        holds,
                    ]);
                    self.solver.assert(f);
                }
            }
        }
    }

    /// Appends one segment's factors, availability constraints, and
    /// boundary caches — everything [`push_one`](Encoding::push_one)
    /// does *except* the entry-boundary guard constraints. Returns the
    /// new segment's index. The core-pattern probe uses this directly:
    /// its system must not constrain any boundary beyond the probed
    /// unlock.
    fn push_body(&mut self, kind: SegmentKind) -> usize {
        let ta = self.ta;
        let si = self.segments.len();

        // Fresh factor variables per push. (Pooling them across
        // re-pushes of the same position looks attractive but makes the
        // simplex reuse the same few slack rows across thousands of
        // checks; accumulated pivot fill-in turns those rows dense and
        // costs far more than the variables save.)
        let mut seg_factors = Vec::new();
        for &r in &self.topo.clone() {
            let rule = &ta.rules[r.0];
            if self.banned[rule.from.0] || self.banned[rule.to.0] {
                continue;
            }
            if let SegmentKind::Fixed(ctx) = kind {
                if self.info.rule_mask(rule) & !ctx != 0 {
                    continue; // guard not unlocked in this context
                }
            }
            let v = self.solver.new_nonneg_var(format!("x{}_{}", si, rule.name));
            seg_factors.push((r, v));
        }
        self.factors.push(seg_factors);
        self.segments.push(kind);

        // Availability within the new segment (interned: the same
        // prefix-sum forms recur on every re-push of a shared prefix).
        {
            let mut delta: HashMap<usize, LinExpr> = HashMap::new();
            let seg = self.factors[si].clone();
            for (r, x) in seg {
                let rule = &ta.rules[r.0];
                let (from, to) = (rule.from.0, rule.to.0);
                let mut avail = self.counter_exprs[si][from].clone();
                if let Some(d) = delta.get(&from) {
                    avail += d.clone();
                }
                let c = self.solver.interner().ge(avail, LinExpr::var(x));
                let id = self.solver.assert_constraint_tracked(c);
                self.provenance.insert(id.0, Provenance::Avail { seg: si });
                *delta.entry(from).or_default() -= LinExpr::var(x);
                *delta.entry(to).or_default() += LinExpr::var(x);
            }
        }

        // Extend the boundary caches to boundary `si + 1`.
        let mut counters = self.counter_exprs[si].clone();
        let mut shared = self.shared_exprs[si].clone();
        for &(r, x) in &self.factors[si] {
            let rule = &ta.rules[r.0];
            counters[rule.to.0] += LinExpr::var(x);
            counters[rule.from.0] -= LinExpr::var(x);
            for &(uv, amount) in &rule.update {
                shared[uv.0] += LinExpr::term(x, amount as i128);
            }
        }
        self.counter_exprs.push(counters);
        self.shared_exprs.push(shared);
        si
    }

    /// Removes the segments added by the matching
    /// [`push_segments`](Encoding::push_segments).
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to pop.
    pub fn pop_segments(&mut self) {
        let count = self.push_sizes.pop().expect("pop without push");
        self.solver.pop();
        for _ in 0..count {
            self.factors.pop();
            self.segments.pop();
        }
        self.counter_exprs.truncate(self.segments.len() + 1);
        self.shared_exprs.truncate(self.segments.len() + 1);
        for forms in &mut self.query_forms {
            forms.truncate(self.segments.len() + 1);
        }
    }

    /// The distinct fixed contexts of the pushed segments, in order
    /// (one entry per push group; segment copies within a group share a
    /// context).
    pub fn context_prefix(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for s in &self.segments {
            if let SegmentKind::Fixed(c) = s {
                if out.last() != Some(c) {
                    out.push(*c);
                }
            }
        }
        out
    }

    /// The context of the last segment, if it is a fixed one.
    pub fn final_context(&self) -> Option<u64> {
        match self.segments.last() {
            Some(SegmentKind::Fixed(ctx)) => Some(*ctx),
            _ => None,
        }
    }

    /// Asserts that the run *ends* in its final context: every
    /// vocabulary guard outside the last segment's context is still
    /// false at the final boundary. (In a natural schema, a guard that
    /// flips during the last segment would have created one more
    /// boundary, so this is complete; it is what makes the final context
    /// authoritative for tail evaluation.) Only meaningful under a query
    /// level: an extension of the prefix may legitimately flip these
    /// guards.
    pub fn assert_tail_exact(&mut self) {
        let Some(ctx) = self.final_context() else {
            return;
        };
        let last = self.num_boundaries() - 1;
        let mut formulas = Vec::new();
        for (gi, g) in self.info.guards.iter().enumerate() {
            if ctx & (1 << gi) == 0 {
                formulas.push(Formula::not(Formula::atom(self.guard_at(g, last))));
            }
        }
        for f in formulas {
            self.solver.assert(f);
        }
    }

    /// Opens a solver level for query constraints.
    pub fn push_query(&mut self) {
        self.solver.push();
        self.in_query = true;
    }

    /// Closes the query level.
    pub fn pop_query(&mut self) {
        self.solver.pop();
        self.in_query = false;
    }

    /// The number of boundaries (`segments + 1`); boundary `i` is the
    /// configuration at the start of segment `i`, the last boundary the
    /// final configuration.
    pub fn num_boundaries(&self) -> usize {
        self.segments.len() + 1
    }

    /// The number of segments currently pushed.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The counter of `loc` at boundary `b`, as a linear expression
    /// (cache lookup; maintained incrementally by push/pop).
    pub fn boundary_counter(&self, b: usize, loc: LocationId) -> LinExpr {
        self.counter_exprs[b.min(self.counter_exprs.len() - 1)][loc.0].clone()
    }

    /// The value of shared variable `v` at boundary `b` (cache lookup).
    pub fn boundary_shared(&self, b: usize, v: VarId) -> LinExpr {
        self.shared_exprs[b.min(self.shared_exprs.len() - 1)][v.0].clone()
    }

    /// The constraint `guard holds at boundary b`.
    fn guard_at(&self, g: &AtomicGuard, b: usize) -> Constraint {
        let mut lhs = LinExpr::zero();
        for (v, c) in g.lhs.iter() {
            lhs += self.boundary_shared(b, v).scale(holistic_lia::Rat::from(c));
        }
        let rhs = param_expr_to_lin(&g.rhs, &self.params);
        match g.cmp {
            holistic_ta::GuardCmp::Ge => Constraint::ge(lhs, rhs),
            holistic_ta::GuardCmp::Lt => Constraint::lt(lhs, rhs),
        }
    }

    /// [`guard_at`](Encoding::guard_at) through the solver's constraint
    /// interner: the same guard atom at the same boundary recurs on
    /// every re-push of a shared prefix and in every property's query.
    fn guard_at_interned(&mut self, g: &AtomicGuard, b: usize) -> Constraint {
        let mut lhs = LinExpr::zero();
        for (v, c) in g.lhs.iter() {
            lhs += self.boundary_shared(b, v).scale(holistic_lia::Rat::from(c));
        }
        let rhs = param_expr_to_lin(&g.rhs, &self.params);
        match g.cmp {
            holistic_ta::GuardCmp::Ge => self.solver.interner().ge(lhs, rhs),
            holistic_ta::GuardCmp::Lt => self.solver.interner().lt(lhs, rhs),
        }
    }

    /// Translates a state proposition at boundary `b` into a solver
    /// formula.
    pub fn prop_at(&self, prop: &Prop, b: usize) -> Formula {
        match prop {
            Prop::True => Formula::True,
            Prop::False => Formula::False,
            Prop::Atom(StateAtom::LocEmpty(l)) => Formula::atom(Constraint::eq(
                self.boundary_counter(b, *l),
                LinExpr::constant(0),
            )),
            Prop::Atom(StateAtom::LocNonEmpty(l)) => Formula::atom(Constraint::ge(
                self.boundary_counter(b, *l),
                LinExpr::constant(1),
            )),
            Prop::Atom(StateAtom::Guard(g)) => Formula::atom(self.guard_at(g, b)),
            Prop::Atom(StateAtom::NotGuard(g)) => Formula::not(Formula::atom(self.guard_at(g, b))),
            Prop::And(ps) => Formula::and(ps.iter().map(|p| self.prop_at(p, b))),
            Prop::Or(ps) => Formula::or(ps.iter().map(|p| self.prop_at(p, b))),
        }
    }

    /// Asserts a proposition at a specific boundary.
    ///
    /// Outside a query level this is structural (the `initially`
    /// proposition at boundary 0) and is tracked with [`Provenance::Init`]
    /// so it can participate in generalized UNSAT cores.
    pub fn assert_prop_at(&mut self, prop: &Prop, b: usize) {
        let f = self.prop_at(prop, b);
        if self.in_query || b != 0 {
            self.solver.assert(f);
        } else {
            let id = self.solver.assert_tracked(f);
            self.provenance.insert(id.0, Provenance::Init);
        }
    }

    /// Asserts that a proposition holds at *some* boundary, with the
    /// disjuncts ordered by [`plan_disjuncts`](Encoding::plan_disjuncts).
    pub fn assert_prop_somewhere(&mut self, prop: &Prop) {
        let forms: Vec<Formula> = (0..self.num_boundaries())
            .map(|b| self.prop_at(prop, b))
            .collect();
        let order = self.plan_disjuncts(&forms);
        let f = Formula::or(order.into_iter().map(|b| forms[b].clone()));
        self.solver.assert(f);
    }

    /// Seeds the case-split planner with the guard bits that recur in
    /// learned core patterns (`held | delta` over the pattern set).
    pub fn set_hot_guards(&mut self, bits: u64) {
        self.hot_guards = bits;
    }

    /// The **case-split planner**: decides the order in which the
    /// per-boundary disjuncts of a `somewhere` assertion reach the
    /// solver. The solver refutes disjuncts in the order given and its
    /// pervasive-conflict learning skips whole sibling suffixes once a
    /// branch-independent refutation is found, so fronting the branches
    /// that are cheapest to refute short-circuits the split. Two keys,
    /// most significant first:
    ///
    /// 1. **Learned activity** (descending): atoms that appeared in
    ///    recent refutation cores ([`Solver::formula_activity`]) are the
    ///    likeliest to be refuted immediately again.
    /// 2. **Certificate heat** (descending): boundaries whose segment
    ///    context contains guards recurring in learned Farkas core
    ///    patterns ([`set_hot_guards`](Encoding::set_hot_guards)) break
    ///    ties before any in-solver conflict has been seen.
    ///
    /// Remaining ties keep boundary order, so with no learned state the
    /// planner is the identity and the emitted disjunction is exactly
    /// the syntactic one. Ordering never affects soundness — a
    /// disjunction is order-independent — only which branch the solver
    /// explores (and learns from) first.
    fn plan_disjuncts(&self, forms: &[Formula]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..forms.len()).collect();
        if self.hot_guards == 0 && forms.iter().all(|f| self.solver.formula_activity(f) == 0.0) {
            return order;
        }
        let heat = |b: usize| -> u32 {
            // Boundary `b` sits after segment `b - 1`; its unlocked set
            // is that segment's context (boundary 0 predates every
            // unlock).
            match b.checked_sub(1).map(|i| self.segments[i]) {
                Some(SegmentKind::Fixed(ctx)) => (ctx & self.hot_guards).count_ones(),
                _ => 0,
            }
        };
        order.sort_by(|&a, &b| {
            let act_a = self.solver.formula_activity(&forms[a]);
            let act_b = self.solver.formula_activity(&forms[b]);
            act_b
                .partial_cmp(&act_a)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| heat(b).cmp(&heat(a)))
                .then_with(|| a.cmp(&b))
        });
        order
    }

    /// Registers a query proposition once per exploration, returning its
    /// slot index. The per-boundary translations of registered props are
    /// cached across schemas, so re-asserting the query at every lattice
    /// node only encodes the boundaries that are new since the last
    /// assert (the per-schema delta).
    pub fn register_query_prop(&mut self, prop: &Prop) -> usize {
        self.query_props.push(prop.clone());
        self.query_forms.push(Vec::new());
        self.query_props.len() - 1
    }

    /// Number of registered query propositions.
    pub fn num_query_props(&self) -> usize {
        self.query_props.len()
    }

    /// The cached translation of query prop `slot` at boundary `b`,
    /// encoding any missing boundaries first.
    fn query_form(&mut self, slot: usize, b: usize) -> Formula {
        if self.query_forms[slot].len() <= b {
            // Detach the prop so `prop_at(&self)` can run while we push
            // into the cache.
            let prop = std::mem::replace(&mut self.query_props[slot], Prop::True);
            while self.query_forms[slot].len() <= b {
                let nb = self.query_forms[slot].len();
                let f = self.prop_at(&prop, nb);
                self.query_forms[slot].push(f);
            }
            self.query_props[slot] = prop;
        }
        self.query_forms[slot][b].clone()
    }

    /// [`assert_prop_somewhere`](Encoding::assert_prop_somewhere) for a
    /// registered query prop, reusing the cached per-boundary encodings.
    pub fn assert_query_prop_somewhere(&mut self, slot: usize) {
        let n = self.num_boundaries();
        let forms: Vec<Formula> = (0..n).map(|b| self.query_form(slot, b)).collect();
        let order = self.plan_disjuncts(&forms);
        let f = Formula::or(order.into_iter().map(|b| forms[b].clone()));
        self.solver.assert(f);
    }

    /// Runs the solver.
    pub fn check(&mut self) -> SatResult {
        self.solver.check()
    }

    /// After an `Unsat` feasibility check of a fully Fixed chain:
    /// extracts a minimal UNSAT core and, when its provenance permits,
    /// generalizes it into a **core pattern** `(M, Δ)` meaning
    ///
    /// > no chain of this exploration whose contexts are all `⊆ M` can
    /// > be extended by a step that newly unlocks `Δ` (or any superset).
    ///
    /// Here `M` is the context preceding the final push group and `Δ`
    /// the guard bits of the core's final-entry constraints.
    ///
    /// **Why this transfers** (contrapositive): suppose some attempt
    /// chain with previous mask `M' ⊆ M` and unlock set `Δ' ⊇ Δ` were
    /// feasible. Its witness run fires, before its final boundary, only
    /// rules whose guards sit inside contexts `⊆ M' ⊆ M` — so the whole
    /// pre-final firing multiset is executable within the *single*
    /// original segment of context `M` (all the rules exist there and
    /// within one context firings commute into grouped topological
    /// order, which is exactly what the availability constraints of one
    /// segment capture). Assign those aggregated factors to the original
    /// chain's segment `M`, zero everywhere else. Every core member is
    /// then satisfied: `Param`/`Init` are chain-independent; `Avail` in
    /// pre-final segments holds because the attempt's run is executable
    /// from the same initial distribution (zero-factor segments are
    /// trivially available); `Avail` in the final segment has zero usage;
    /// and each `GuardEntry` of `Δ` at the final boundary evaluates on
    /// shared values equal to the attempt's final-boundary values, where
    /// the attempt itself asserts the guard holds (since `Δ ⊆ Δ'`). That
    /// satisfies the core — contradicting its verified infeasibility.
    /// Hence every such attempt is infeasible, over ℤ as well (the
    /// argument never relaxes to ℚ).
    ///
    /// Anything position-specific in the core blocks generalization and
    /// yields `None`: `LockedFalse` (the locked set differs across
    /// sibling chains) and `GuardEntry` at non-final boundaries (the
    /// attempt never asserts those facts).
    pub fn unsat_core_pattern(&mut self) -> Option<(u64, u64)> {
        let copies = *self.push_sizes.last()?;
        let final_entry = self.segments.len().checked_sub(copies)?;
        let prev_mask = if final_entry == 0 {
            0
        } else {
            match self.segments[final_entry - 1] {
                SegmentKind::Fixed(m) => m,
                SegmentKind::Free => return None,
            }
        };
        if self.segments.iter().any(|s| matches!(s, SegmentKind::Free)) {
            return None;
        }
        let core = self.solver.unsat_core()?;
        let mut delta = 0u64;
        for id in core {
            match self.provenance.get(&id.0)? {
                Provenance::Param | Provenance::Init => {}
                Provenance::Avail { .. } => {}
                Provenance::GuardEntry { seg, guard } if *seg == final_entry => {
                    delta |= 1 << *guard;
                }
                // Position-specific: pinned to this exact chain.
                // (`GuardHeld` never appears in chain encodings, only
                // in probes; refuse it defensively all the same.)
                Provenance::GuardEntry { .. }
                | Provenance::LockedFalse { .. }
                | Provenance::GuardHeld { .. } => return None,
            }
        }
        // A core that never mentions the new unlock cannot blame the
        // extension; the prefix was feasible, so such a core should not
        // arise — refuse to learn from it rather than over-prune.
        if delta == 0 {
            return None;
        }
        Some((prev_mask, delta))
    }

    /// Probes the **generalized** infeasibility of one extension step,
    /// independent of any particular chain: from a valid initial
    /// distribution, fire any multiset of rules available under `prev`,
    /// assert that `prev`'s own (monotone) guard conditions hold at the
    /// resulting boundary, and demand that `newly`'s guards hold there
    /// too. Returns a **tri-pattern** `(mask, held, Δ)` meaning
    ///
    /// > no chain whose contexts are all `⊆ mask` and whose final
    /// > context contains `held` can be extended by a step newly
    /// > unlocking `Δ` (or any superset).
    ///
    /// This is the least-constrained system the tri-pattern semantics
    /// quantifies over. Any feasible attempt with previous context
    /// `held ⊆ P ⊆ mask` and unlock set `⊇ Δ` yields a solution: the
    /// attempt's pre-final firings all sit in contexts `⊆ P ⊆ mask`, so
    /// they aggregate into the single probe segment exactly as in the
    /// [`unsat_core_pattern`](Encoding::unsat_core_pattern) transfer
    /// argument, and the probe boundary carries the attempt's own
    /// final-boundary shared values. Each `held` guard is satisfied
    /// there **by monotonicity**: `held ⊆ P` means the attempt asserted
    /// the guard at its unlock boundary, updates only ever increment
    /// shared counters, and held guards are restricted to `≥` guards
    /// with non-negative counter coefficients — so once crossed the
    /// condition persists to every later boundary, the final one
    /// included. Hence `Unsat` licenses the tri-pattern outright.
    ///
    /// The probe's Farkas certificate supplies the minimal `held` and
    /// `Δ` (only certificate members are kept, so the pattern is as
    /// general as this probe can prove): `held = 0` degenerates to the
    /// pair-pattern of earlier revisions, while a non-zero `held`
    /// captures the parametric conflicts — final-boundary threshold
    /// clashes between an already-crossed guard and the newly demanded
    /// one — that the unstrengthened probe reports as satisfiable.
    ///
    /// Must be called on a base encoding (no segments pushed, no query
    /// asserts); consumes the encoding's solver state. Returns `None`
    /// when the probe is satisfiable, the certificate is unavailable,
    /// or `newly` is empty.
    pub fn probe_core_pattern(&mut self, prev: u64, newly: u64) -> Option<(u64, u64, u64)> {
        debug_assert!(
            self.segments.is_empty() && !self.in_query,
            "the probe needs a pristine base encoding"
        );
        self.probe_core_pattern_inner(prev, newly)
    }

    /// Appends one guard-constraint-free segment available under `ctx`
    /// to a base encoding. The query probe builds its aggregated
    /// single-segment system with this: asserting entry guards would
    /// wrongly restrict which runs the probe quantifies over.
    pub(crate) fn push_probe_segment(&mut self, ctx: u64) {
        debug_assert!(
            self.segments.is_empty() && !self.in_query,
            "the probe needs a pristine base encoding"
        );
        self.push_body(SegmentKind::Fixed(ctx));
    }

    /// Guards whose truth is monotone along any run: `≥` comparisons
    /// whose counter coefficients are all non-negative. Increment-only
    /// updates make every shared counter non-decreasing, so such a
    /// guard can only flip false → true. (Fall guards are rejected
    /// upstream, but mixed-sign coefficients must be excluded here.)
    fn monotone_guards(&self) -> u64 {
        let mut mask = 0u64;
        for (gi, g) in self.info.guards.iter().enumerate() {
            if g.cmp == holistic_ta::GuardCmp::Ge && g.lhs.iter().all(|(_, c)| c >= 0) {
                mask |= 1 << gi;
            }
        }
        mask
    }

    fn probe_core_pattern_inner(&mut self, prev: u64, newly: u64) -> Option<(u64, u64, u64)> {
        if newly == 0 {
            return None;
        }
        if prev != 0 {
            self.push_body(SegmentKind::Fixed(prev));
        }
        let boundary = self.segments.len();
        let monotone = self.monotone_guards();
        let info = self.info;
        for (gi, g) in info.guards.iter().enumerate() {
            if newly & (1 << gi) != 0 {
                let c = self.guard_at_interned(g, boundary);
                let id = self.solver.assert_tracked(Formula::atom(c));
                self.provenance.insert(
                    id.0,
                    Provenance::GuardEntry {
                        seg: boundary,
                        guard: gi,
                    },
                );
            } else if prev & monotone & (1 << gi) != 0 {
                // An already-unlocked monotone guard still holds at the
                // final boundary of any attempt whose previous context
                // contains it; asserting it sharpens the probe without
                // narrowing what a `held`-conditioned pattern prunes.
                let c = self.guard_at_interned(g, boundary);
                let id = self.solver.assert_tracked(Formula::atom(c));
                self.provenance
                    .insert(id.0, Provenance::GuardHeld { guard: gi });
            }
        }
        if !matches!(self.solver.check(), SatResult::Unsat) {
            return None;
        }
        let core = self.solver.unsat_core()?;
        let mut held = 0u64;
        let mut delta = 0u64;
        for id in core {
            match self.provenance.get(&id.0)? {
                Provenance::GuardEntry { guard, .. } => delta |= 1 << *guard,
                Provenance::GuardHeld { guard } => held |= 1 << *guard,
                _ => {}
            }
        }
        // Without the unlock asserts the system is satisfiable (fire
        // nothing — the `held` asserts alone are met by some feasible
        // prefix, or no such prefix survives to attempt the step), so a
        // sound core must mention them; refuse to learn from one that
        // does not rather than over-prune.
        if delta == 0 {
            return None;
        }
        Some((prev, held, delta))
    }

    /// Solver statistics.
    pub fn solver_stats(&self) -> holistic_lia::SolverStats {
        self.solver.stats()
    }

    /// (rows, vars) of the underlying tableau (a size statistic).
    pub fn tableau_size(&self) -> (usize, usize) {
        self.solver.tableau_size()
    }

    /// Extracts the witness run from a model.
    pub fn extract(&self, model: &Model) -> SymbolicRun {
        let params: Vec<i64> = self.params.iter().map(|&v| model.value(v) as i64).collect();
        let init: Vec<i64> = self
            .init
            .iter()
            .map(|e| {
                model
                    .eval(e)
                    .to_integer()
                    .expect("integral initial counters") as i64
            })
            .collect();
        let steps: Vec<Vec<(RuleId, u64)>> = self
            .factors
            .iter()
            .map(|seg| {
                seg.iter()
                    .filter_map(|&(r, x)| {
                        let v = model.value(x);
                        if v > 0 {
                            Some((r, v as u64))
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        SymbolicRun {
            params,
            init,
            steps,
        }
    }

    /// The number of factor variables (a size statistic).
    pub fn num_factors(&self) -> usize {
        self.factors.iter().map(Vec::len).sum()
    }
}

/// A witness run extracted from a satisfying model: parameter values,
/// initial distribution, and per-segment accelerated firings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymbolicRun {
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// Initial counter per location.
    pub init: Vec<i64>,
    /// Per segment: `(rule, times)` in firing order.
    pub steps: Vec<Vec<(RuleId, u64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_lia::SolverConfig;
    use holistic_ta::{Guard, ParamExpr, TaBuilder, VarExpr};

    /// V --r1/x++--> A --r2 (x ≥ n−f)--> D.
    fn chain() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("chain");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let a = b.location("A");
        let d = b.final_location("D");
        b.rule("r1", v, a, Guard::always()).inc(x, 1);
        let mut thresh = ParamExpr::param(n);
        thresh.add_term(f, -1);
        b.rule(
            "r2",
            a,
            d,
            Guard::atom(AtomicGuard::ge(VarExpr::var(x), thresh)),
        );
        b.build().unwrap()
    }

    #[test]
    fn reachability_of_final_location() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        // Schedule: ∅ then {x >= n-f}.
        let segments = [SegmentKind::Fixed(0), SegmentKind::Fixed(1)];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[], SolverConfig::default());
        let d = ta.location_by_name("D").unwrap();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 2);
        let r = enc.check();
        let model = r.model().expect("D is reachable");
        let run = enc.extract(model);
        // Everyone must broadcast before anyone delivers.
        let total_r1: u64 = run.steps[0]
            .iter()
            .chain(run.steps[1].iter())
            .filter(|(r, _)| ta.rules[r.0].name == "r1")
            .map(|&(_, k)| k)
            .sum();
        assert!(total_r1 as i64 >= run.params[0] - run.params[1]);
    }

    #[test]
    fn unreachable_without_unlock() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        // Only the empty context: r2 never enabled.
        let segments = [SegmentKind::Fixed(0)];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[], SolverConfig::default());
        let d = ta.location_by_name("D").unwrap();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 1);
        assert!(enc.check().is_unsat());
    }

    #[test]
    fn push_pop_segments_restore_state() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        let mut enc = Encoding::new(&ta, &info, &[], SolverConfig::default());
        enc.push_segments(SegmentKind::Fixed(0), 1);
        assert_eq!(enc.num_segments(), 1);
        // Query at the one-segment stage: D unreachable.
        let d = ta.location_by_name("D").unwrap();
        enc.push_query();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 1);
        assert!(enc.check().is_unsat());
        enc.pop_query();
        // Extend: now reachable.
        enc.push_segments(SegmentKind::Fixed(1), 1);
        assert_eq!(enc.num_segments(), 2);
        enc.push_query();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 2);
        assert!(enc.check().is_sat());
        enc.pop_query();
        // Pop back: unreachable again.
        enc.pop_segments();
        assert_eq!(enc.num_segments(), 1);
        enc.push_query();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 1);
        assert!(enc.check().is_unsat());
        enc.pop_query();
    }

    #[test]
    fn free_segments_reach_final_location() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        let segments = [SegmentKind::Free, SegmentKind::Free];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[], SolverConfig::default());
        let d = ta.location_by_name("D").unwrap();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 2);
        assert!(enc.check().is_sat());
    }

    #[test]
    fn free_segments_respect_guards() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        let segments = [SegmentKind::Free];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[], SolverConfig::default());
        // A single segment cannot both raise x and use the raised value:
        // the guard is evaluated at the segment start where x = 0 < n-f.
        let d = ta.location_by_name("D").unwrap();
        enc.assert_prop_at(&Prop::loc_nonempty(d), 1);
        assert!(enc.check().is_unsat());
    }

    #[test]
    fn globally_empty_blocks_routes() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        let a = ta.location_by_name("A").unwrap();
        let d = ta.location_by_name("D").unwrap();
        let segments = [SegmentKind::Fixed(0), SegmentKind::Fixed(1)];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[a], SolverConfig::default());
        enc.assert_prop_at(&Prop::loc_nonempty(d), 2);
        assert!(enc.check().is_unsat(), "route through A is banned");
    }

    #[test]
    fn availability_prevents_token_overdraft() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        let segments = [SegmentKind::Fixed(0), SegmentKind::Fixed(1)];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[], SolverConfig::default());
        let a = ta.location_by_name("A").unwrap();
        let d = ta.location_by_name("D").unwrap();
        // More processes in A ∪ D than exist: impossible.
        let total = enc.boundary_counter(2, a) + enc.boundary_counter(2, d);
        let n_minus_f = {
            let mut e = ParamExpr::param(holistic_ta::ParamId(0));
            e.add_term(holistic_ta::ParamId(1), -1);
            param_expr_to_lin(&e, &enc.params)
        };
        enc.solver
            .assert_constraint(Constraint::gt(total, n_minus_f));
        assert!(enc.check().is_unsat());
    }

    #[test]
    fn prop_somewhere_finds_intermediate_state() {
        let ta = chain();
        let info = GuardInfo::analyse(&ta).unwrap();
        let segments = [SegmentKind::Fixed(0), SegmentKind::Fixed(1)];
        let mut enc = Encoding::with_segments(&ta, &info, &segments, &[], SolverConfig::default());
        let a = ta.location_by_name("A").unwrap();
        enc.assert_prop_somewhere(&Prop::loc_nonempty(a));
        assert!(enc.check().is_sat());
    }
}
