//! # holistic-oracle — explicit-state oracle and differential harness
//!
//! The symbolic checker answers *parameterized* questions with simplex
//! over rational lattices; a bug anywhere in that pipeline (schema
//! enumeration, SMT-free feasibility, the LTL reduction) could
//! silently produce wrong verdicts. This crate is the independent
//! second opinion: for a fixed small valuation `(n, t, f)` the counter
//! system is finite, so the oracle *concretely enumerates it* —
//! breadth-first search with a visited set, no rationals, no simplex,
//! no code shared with `holistic-lia` or `checker::explore` — and
//! decides the same safety/liveness queries by brute force.
//!
//! * [`concrete`] — the oracle's own counter-system semantics, re-derived
//!   from raw automaton data (it deliberately does not call
//!   `holistic_ta::CounterSystem`);
//! * [`decide`] — exhaustive BFS deciding classified queries per
//!   valuation, with an honest `Unknown` on budget exhaustion;
//! * [`replay`] — step-by-step replay of symbolic counterexamples
//!   through the oracle's transition relation;
//! * [`schedules`] — independent context-chain enumeration pinned
//!   against the checker's allocation-free `count_schedules`, plus the
//!   concrete cross-check that observed chains are enumerated chains;
//! * [`diff`] — the differential harness: every Table-2 cell and every
//!   seeded mutant at small parameters, symbolic vs. explicit-state,
//!   under soundness-approximation comparison rules, plus the
//!   adjudication of the two documented kill-matrix survivors.
//!
//! The comparison rules account for the asymmetry between the two
//! pipelines: symbolic `Verified` is a claim about *all* admissible
//! parameters, so a concrete violation at any swept valuation refutes
//! it (hard failure); symbolic `Violated` comes with a counterexample
//! at specific parameters, which must replay concretely (and the
//! oracle must not prove `Holds` exhaustively at exactly those
//! parameters); symbolic `Unknown` is always acceptable — the checker
//! is allowed to give up, never to lie. Likewise the oracle's own
//! `Unknown` (state-budget exhaustion) is never counted against
//! either side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concrete;
pub mod decide;
pub mod diff;
pub mod replay;
pub mod schedules;

pub use concrete::{
    constraint_holds, eval_param_expr, eval_var_expr, guard_holds, ConcreteError, ConcreteSystem,
};
pub use decide::{
    combined_verdict, decide_query, decide_spec, OracleDecision, OracleError, OracleVerdict,
    OracleWitness,
};
pub use diff::{
    run_adjudication, run_diff, Agreement, CellDiff, DiffConfig, DiffReport, SurvivorVerdict,
};
pub use replay::{replay_counterexample, ReplayFailure, ReplayedCe};
pub use schedules::{enumerate_context_chains, observed_context_chains};
