//! The differential validation harness.
//!
//! Sweeps every Table-2 cell and every seeded mutant corpus through
//! *both* pipelines — the symbolic checker and the explicit-state
//! oracle — at small concrete parameters, and compares verdicts under
//! the soundness-approximation rules:
//!
//! * symbolic **verified** claims all admissible parameters, so a
//!   concrete oracle violation at *any* swept valuation is a hard
//!   disagreement;
//! * symbolic **violated** carries a counterexample at specific
//!   parameters: it must replay step-by-step through the oracle's
//!   transition relation, and the oracle must not exhaustively prove
//!   the property at exactly those parameters;
//! * symbolic **unknown** is always acceptable (giving up is sound;
//!   lying is not), and so is the oracle's own budget-exhaustion
//!   `Unknown`.
//!
//! On top of the sweep, [`run_adjudication`] takes the two documented
//! kill-matrix survivors (via
//! [`holistic_mutate::survivor_cases`]) and tests their triage claims
//! concretely: `thr.down.b0_high`'s claimed equivalence by comparing
//! mutant-vs-pristine oracle verdicts on the full kill-property set,
//! and `drop.s3`'s claimed justice mask by re-deciding `SRoundTerm`
//! under rule-wise justice, where the kill should reappear.

use std::time::Duration;

use holistic_bench::json::quote as q;
use holistic_bench::table2_cells;
use holistic_checker::{Checker, CheckerConfig, GuardInfo, Verdict};
use holistic_ltl::{classify, Justice, Ltl};
use holistic_mutate::{
    bv_broadcast_corpus, bv_kill_properties, simplified_corpus, simplified_kill_properties,
    smoke_ids, survivor_cases,
};
use holistic_ta::ThresholdAutomaton;

use crate::decide::{combined_verdict, decide_query, decide_spec, OracleVerdict};
use crate::replay::replay_counterexample;

/// Budgets and scope for a differential run.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Oracle BFS budget per (query, valuation).
    pub max_states: usize,
    /// Sweep valuations with every parameter in `0..=param_bound`.
    pub param_bound: i64,
    /// Keep only the smallest (by process count) admissible valuations.
    pub max_valuations: usize,
    /// Checker wall-clock budget per property.
    pub time_budget: Duration,
    /// Checker schema cap per property.
    pub max_schemas: usize,
    /// Smoke scope: bv-broadcast Table-2 cells and the bv smoke mutant
    /// subset only, no survivor adjudication.
    pub smoke: bool,
}

impl DiffConfig {
    /// The full sweep: all twelve Table-2 cells, both complete mutant
    /// corpora and the survivor adjudication.
    pub fn full() -> DiffConfig {
        DiffConfig {
            max_states: 500_000,
            param_bound: 4,
            max_valuations: 6,
            time_budget: Duration::from_secs(20),
            max_schemas: 20_000,
            smoke: false,
        }
    }

    /// The CI smoke scope: bv-broadcast only, tighter budgets.
    pub fn smoke() -> DiffConfig {
        DiffConfig {
            max_states: 100_000,
            param_bound: 4,
            max_valuations: 4,
            time_budget: Duration::from_secs(10),
            max_schemas: 5_000,
            smoke: true,
        }
    }
}

/// How one cell's two verdicts relate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Agreement {
    /// Definite verdicts on both sides, consistent.
    Agree,
    /// The checker gave up (schema cap / time budget) — acceptable.
    SymbolicUnknown,
    /// Every oracle attempt exhausted its state budget — acceptable.
    OracleUnknown,
    /// The cell never reached a comparison (checker error, static
    /// mutant rejection, no admissible valuation under the bound).
    NotCheckable(String),
    /// A hard soundness failure: the pipelines contradict each other.
    Disagreement(String),
}

impl Agreement {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Agreement::Agree => "agree",
            Agreement::SymbolicUnknown => "symbolic-unknown",
            Agreement::OracleUnknown => "oracle-unknown",
            Agreement::NotCheckable(_) => "not-checkable",
            Agreement::Disagreement(_) => "DISAGREE",
        }
    }

    /// Whether this outcome fails the harness.
    pub fn is_failure(&self) -> bool {
        matches!(self, Agreement::Disagreement(_))
    }
}

/// One compared cell.
#[derive(Clone, Debug)]
pub struct CellDiff {
    /// Cell family: `table2` or `mutant/<corpus>`.
    pub subject: String,
    /// Cell name: `<automaton>/<property>` or `<mutant>/<property>`.
    pub name: String,
    /// The symbolic side, in words.
    pub symbolic: String,
    /// The oracle side, in words (per query, per valuation).
    pub oracle: String,
    /// Valuations swept.
    pub valuations: usize,
    /// Total oracle product states explored.
    pub states: usize,
    /// Counterexamples replayed step-by-step.
    pub replays: usize,
    /// The comparison outcome.
    pub agreement: Agreement,
}

/// A concretely adjudicated kill-matrix survivor.
#[derive(Clone, Debug)]
pub struct SurvivorVerdict {
    /// Mutant id.
    pub id: String,
    /// Corpus name.
    pub automaton: &'static str,
    /// The triage note whose claim is under test.
    pub claim: String,
    /// `(scenario, property, valuation, mutant verdict, pristine
    /// verdict, diverged)` rows.
    pub rows: Vec<AdjRow>,
    /// No kill-matrix property distinguishes mutant from pristine at
    /// any swept valuation (with at least one definite pair observed).
    pub equivalent: bool,
    /// For survivors with an alternative scenario: whether the kill
    /// reappears there (mutant violated, pristine holds).
    pub alt_kill_reappears: Option<bool>,
    /// The mechanical conclusion drawn from the rows.
    pub conclusion: String,
}

/// One adjudication measurement.
#[derive(Clone, Debug)]
pub struct AdjRow {
    /// `matrix` or the alternative-scenario label.
    pub scenario: String,
    /// Property name.
    pub property: String,
    /// Parameter valuation.
    pub valuation: Vec<i64>,
    /// Oracle verdict on the mutant.
    pub mutant: String,
    /// Oracle verdict on the pristine automaton.
    pub pristine: String,
    /// Both definite and different.
    pub diverged: bool,
}

/// A completed differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Every compared cell.
    pub cells: Vec<CellDiff>,
    /// Survivor adjudications (empty in smoke scope).
    pub survivors: Vec<SurvivorVerdict>,
}

/// Accumulated outcome of comparing one cell.
struct CellOutcome {
    agree_definite: bool,
    symbolic_unknown: bool,
    oracle_unknown: bool,
    disagreement: Option<String>,
    states: usize,
    replays: usize,
    summary: Vec<String>,
}

impl CellOutcome {
    fn new() -> CellOutcome {
        CellOutcome {
            agree_definite: false,
            symbolic_unknown: false,
            oracle_unknown: false,
            disagreement: None,
            states: 0,
            replays: 0,
            summary: Vec::new(),
        }
    }

    fn agreement(&self) -> Agreement {
        if let Some(msg) = &self.disagreement {
            Agreement::Disagreement(msg.clone())
        } else if self.agree_definite {
            Agreement::Agree
        } else if self.oracle_unknown {
            Agreement::OracleUnknown
        } else {
            Agreement::SymbolicUnknown
        }
    }
}

fn fmt_valuation(v: &[i64]) -> String {
    let parts: Vec<String> = v.iter().map(i64::to_string).collect();
    format!("[{}]", parts.join(","))
}

/// Compares one (automaton, property, justice) cell.
fn diff_cell(
    subject: &str,
    name: &str,
    ta: &ThresholdAutomaton,
    spec: &Ltl,
    justice: &Justice,
    checker: &Checker,
    cfg: &DiffConfig,
) -> CellDiff {
    let mut valuations = ta.admissible_valuations(cfg.param_bound);
    valuations.truncate(cfg.max_valuations);
    let skeleton = |symbolic: String, oracle: String, agreement: Agreement| CellDiff {
        subject: subject.to_owned(),
        name: name.to_owned(),
        symbolic,
        oracle,
        valuations: valuations.len(),
        states: 0,
        replays: 0,
        agreement,
    };
    if valuations.is_empty() {
        return skeleton(
            "-".into(),
            "-".into(),
            Agreement::NotCheckable(format!(
                "no admissible valuation with parameters <= {}",
                cfg.param_bound
            )),
        );
    }
    let report = match checker.check_ltl(ta, spec, justice) {
        Ok(r) => r,
        Err(e) => {
            return skeleton(
                format!("error: {e}"),
                "-".into(),
                Agreement::NotCheckable(format!("checker error: {e}")),
            )
        }
    };
    let queries = match classify(ta, spec) {
        Ok(qs) => qs,
        Err(e) => {
            return skeleton(
                report.verdict().label().into(),
                "-".into(),
                Agreement::Disagreement(format!(
                    "checker produced a report but the spec does not classify: {e:?}"
                )),
            )
        }
    };
    let mut out = CellOutcome::new();
    if queries.len() != report.queries.len() {
        out.disagreement = Some(format!(
            "classification gives {} queries, checker report has {}",
            queries.len(),
            report.queries.len()
        ));
    }
    for (qi, (query, qr)) in queries.iter().zip(&report.queries).enumerate() {
        if out.disagreement.is_some() {
            break;
        }
        match &qr.verdict {
            Verdict::Unknown(_) => {
                out.symbolic_unknown = true;
                out.summary.push(format!("q{qi}: symbolic gave up"));
            }
            Verdict::Verified => {
                let mut labels = Vec::new();
                for val in &valuations {
                    match decide_query(ta, query, justice, val, cfg.max_states) {
                        Err(e) => {
                            out.disagreement =
                                Some(format!("q{qi}: oracle rejects valuation {val:?}: {e}"));
                            break;
                        }
                        Ok(d) => {
                            out.states += d.states;
                            match &d.verdict {
                                OracleVerdict::Violated(w) => {
                                    out.disagreement = Some(format!(
                                        "q{qi}: symbolic verified, but a concrete {} violation \
                                         exists at {} ({} steps)",
                                        w.kind,
                                        fmt_valuation(val),
                                        w.trace.len().saturating_sub(1)
                                    ));
                                    break;
                                }
                                OracleVerdict::Holds => {
                                    out.agree_definite = true;
                                    labels.push(format!("holds@{}", fmt_valuation(val)));
                                }
                                OracleVerdict::Unknown(_) => {
                                    out.oracle_unknown = true;
                                    labels.push(format!("budget@{}", fmt_valuation(val)));
                                }
                            }
                        }
                    }
                }
                out.summary.push(format!("q{qi}: {}", labels.join(" ")));
            }
            Verdict::Violated(ce) => {
                match replay_counterexample(ta, spec, justice, qi, ce) {
                    Err(e) => {
                        out.disagreement =
                            Some(format!("q{qi}: counterexample fails oracle replay: {e}"));
                        continue;
                    }
                    Ok(replayed) => {
                        out.replays += 1;
                        out.agree_definite = true;
                        out.summary.push(format!(
                            "q{qi}: replayed {} steps@{}",
                            replayed.trace_len.saturating_sub(1),
                            fmt_valuation(&ce.params)
                        ));
                    }
                }
                // The oracle must not *exhaustively* prove the property
                // at exactly the counterexample's parameters.
                match decide_query(ta, query, justice, &ce.params, cfg.max_states) {
                    Err(e) => {
                        out.disagreement = Some(format!(
                            "q{qi}: counterexample at inadmissible parameters {:?}: {e}",
                            ce.params
                        ));
                    }
                    Ok(d) => {
                        out.states += d.states;
                        if matches!(d.verdict, OracleVerdict::Holds) {
                            out.disagreement = Some(format!(
                                "q{qi}: symbolic violated at {:?}, but exhaustive search finds \
                                 no violation there",
                                ce.params
                            ));
                        }
                    }
                }
            }
        }
    }
    CellDiff {
        subject: subject.to_owned(),
        name: name.to_owned(),
        symbolic: report.verdict().label().to_owned(),
        oracle: out.summary.join("; "),
        valuations: valuations.len(),
        states: out.states,
        replays: out.replays,
        agreement: out.agreement(),
    }
}

/// Statically screens a mutant the same way the kill matrix does.
fn static_rejection(ta: &ThresholdAutomaton) -> Option<String> {
    match ta.validate() {
        Err(e) => Some(format!("validation: {e}")),
        Ok(()) => match GuardInfo::analyse(ta) {
            Err(e) => Some(format!("guard analysis: {e:?}")),
            Ok(_) => None,
        },
    }
}

/// Runs the differential sweep (and, in full scope, the survivor
/// adjudication). `progress` receives one line per completed cell.
pub fn run_diff(cfg: &DiffConfig, mut progress: impl FnMut(&CellDiff)) -> DiffReport {
    let checker = Checker::with_config(CheckerConfig {
        max_schemas: cfg.max_schemas,
        time_budget: Some(cfg.time_budget),
        threads: Some(1),
        ..CheckerConfig::default()
    });
    let mut cells = Vec::new();
    let mut push = |cell: CellDiff, cells: &mut Vec<CellDiff>| {
        progress(&cell);
        cells.push(cell);
    };

    for cell in table2_cells() {
        if cfg.smoke && cell.automaton != "bv-broadcast" {
            continue;
        }
        let name = format!("{}/{}", cell.automaton, cell.property);
        let diff = diff_cell(
            "table2",
            &name,
            &cell.ta,
            &cell.spec,
            &cell.justice,
            &checker,
            cfg,
        );
        push(diff, &mut cells);
    }

    let (bv, mut corpus) = bv_broadcast_corpus();
    if cfg.smoke {
        let keep = smoke_ids();
        corpus.retain(|m| keep.contains(&m.id.as_str()));
    }
    let properties = bv_kill_properties(&bv);
    for m in &corpus {
        if let Some(reason) = static_rejection(&m.ta) {
            push(
                CellDiff {
                    subject: "mutant/bv_broadcast".into(),
                    name: m.id.clone(),
                    symbolic: "rejected".into(),
                    oracle: "-".into(),
                    valuations: 0,
                    states: 0,
                    replays: 0,
                    agreement: Agreement::NotCheckable(format!("statically rejected: {reason}")),
                },
                &mut cells,
            );
            continue;
        }
        let justice = Justice::from_rules(&m.ta);
        for (prop, spec) in &properties {
            let name = format!("{}/{}", m.id, prop);
            let diff = diff_cell(
                "mutant/bv_broadcast",
                &name,
                &m.ta,
                spec,
                &justice,
                &checker,
                cfg,
            );
            push(diff, &mut cells);
        }
    }

    if !cfg.smoke {
        let (simplified, corpus) = simplified_corpus();
        let properties = simplified_kill_properties(&simplified);
        // The kill matrix runs every simplified mutant under the
        // pristine Appendix-F justice (requirement-based, surgery-safe).
        let justice = simplified.justice();
        for m in &corpus {
            if let Some(reason) = static_rejection(&m.ta) {
                push(
                    CellDiff {
                        subject: "mutant/simplified_consensus".into(),
                        name: m.id.clone(),
                        symbolic: "rejected".into(),
                        oracle: "-".into(),
                        valuations: 0,
                        states: 0,
                        replays: 0,
                        agreement: Agreement::NotCheckable(format!(
                            "statically rejected: {reason}"
                        )),
                    },
                    &mut cells,
                );
                continue;
            }
            for (prop, spec) in &properties {
                let name = format!("{}/{}", m.id, prop);
                let diff = diff_cell(
                    "mutant/simplified_consensus",
                    &name,
                    &m.ta,
                    spec,
                    &justice,
                    &checker,
                    cfg,
                );
                push(diff, &mut cells);
            }
        }
    }

    let survivors = if cfg.smoke {
        Vec::new()
    } else {
        run_adjudication(cfg)
    };
    DiffReport { cells, survivors }
}

/// Oracle verdict label for one spec (combined across its queries),
/// with errors folded into a label string.
fn oracle_label(
    ta: &ThresholdAutomaton,
    spec: &Ltl,
    justice: &Justice,
    params: &[i64],
    max_states: usize,
) -> String {
    match decide_spec(ta, spec, justice, params, max_states) {
        Err(e) => format!("error: {e}"),
        Ok(decisions) => combined_verdict(&decisions).label().to_owned(),
    }
}

/// Adjudicates the two documented kill-matrix survivors with the
/// explicit-state oracle: are they true equivalences, or missed kills?
pub fn run_adjudication(cfg: &DiffConfig) -> Vec<SurvivorVerdict> {
    let mut out = Vec::new();
    for case in survivor_cases() {
        let mut valuations = case.mutant.ta.admissible_valuations(cfg.param_bound);
        valuations.truncate(cfg.max_valuations);
        let mut rows = Vec::new();
        let mut any_definite_pair = false;
        let mut any_divergence = false;
        for (prop, spec) in &case.properties {
            for val in &valuations {
                let mutant = oracle_label(
                    &case.mutant.ta,
                    spec,
                    &case.mutant_justice,
                    val,
                    cfg.max_states,
                );
                let pristine = oracle_label(
                    &case.pristine,
                    spec,
                    &case.pristine_justice,
                    val,
                    cfg.max_states,
                );
                let definite = |s: &str| s == "holds" || s == "violated";
                let diverged = definite(&mutant) && definite(&pristine) && mutant != pristine;
                any_definite_pair |= definite(&mutant) && definite(&pristine);
                any_divergence |= diverged;
                rows.push(AdjRow {
                    scenario: "matrix".into(),
                    property: prop.clone(),
                    valuation: val.clone(),
                    mutant,
                    pristine,
                    diverged,
                });
            }
        }
        let equivalent = any_definite_pair && !any_divergence;

        let mut alt_kill_reappears = None;
        if let Some(alt) = &case.alt {
            let mut reappears = false;
            for (prop, spec) in &alt.properties {
                for val in &valuations {
                    let mutant = oracle_label(
                        &case.mutant.ta,
                        spec,
                        &alt.mutant_justice,
                        val,
                        cfg.max_states,
                    );
                    let pristine = oracle_label(
                        &case.pristine,
                        spec,
                        &alt.pristine_justice,
                        val,
                        cfg.max_states,
                    );
                    let diverged = mutant == "violated" && pristine == "holds";
                    reappears |= diverged;
                    rows.push(AdjRow {
                        scenario: alt.label.to_owned(),
                        property: prop.clone(),
                        valuation: val.clone(),
                        mutant,
                        pristine,
                        diverged,
                    });
                }
            }
            alt_kill_reappears = Some(reappears);
        }

        let conclusion = match (equivalent, alt_kill_reappears) {
            (true, None) => format!(
                "no kill-matrix property distinguishes the mutant from the pristine automaton \
                 at any of the {} swept valuations: consistent with the claimed equivalence \
                 in the abstraction",
                valuations.len()
            ),
            (false, None) => "DIVERGENCE on the kill-matrix properties: the equivalence claim \
                 is wrong — the kill matrix missed a real kill"
                .to_owned(),
            (eq, Some(true)) => format!(
                "{}; under the alternative justice the kill reappears (mutant violated, \
                 pristine holds): the survival is a property of the justice encoding, \
                 not an equivalence",
                if eq {
                    "kill-matrix properties cannot distinguish the mutant under the matrix justice"
                } else {
                    "kill-matrix properties already diverge"
                }
            ),
            (eq, Some(false)) => format!(
                "{}; the kill did NOT reappear under the alternative justice — the triage \
                 note's mask claim is not confirmed at these parameters",
                if eq {
                    "kill-matrix properties cannot distinguish the mutant under the matrix justice"
                } else {
                    "kill-matrix properties already diverge"
                }
            ),
        };
        out.push(SurvivorVerdict {
            id: case.mutant.id.clone(),
            automaton: case.automaton,
            claim: case.mutant.note.unwrap_or("").to_owned(),
            rows,
            equivalent,
            alt_kill_reappears,
            conclusion,
        });
    }
    out
}

impl DiffReport {
    /// Cells whose outcome fails the harness.
    pub fn disagreements(&self) -> Vec<&CellDiff> {
        self.cells
            .iter()
            .filter(|c| c.agreement.is_failure())
            .collect()
    }

    /// Whether the run found zero definite-verdict disagreements.
    pub fn passed(&self) -> bool {
        self.disagreements().is_empty()
    }

    /// Counts by agreement label: `(agree, symbolic-unknown,
    /// oracle-unknown, not-checkable, disagree)`.
    pub fn tally(&self) -> (usize, usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0, 0);
        for c in &self.cells {
            match c.agreement {
                Agreement::Agree => t.0 += 1,
                Agreement::SymbolicUnknown => t.1 += 1,
                Agreement::OracleUnknown => t.2 += 1,
                Agreement::NotCheckable(_) => t.3 += 1,
                Agreement::Disagreement(_) => t.4 += 1,
            }
        }
        t
    }

    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let name_w = self
            .cells
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "{:<26} {:<name_w$} {:<9} {:>6} {:>9}  agreement",
            "subject", "cell", "symbolic", "vals", "states"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<26} {:<name_w$} {:<9} {:>6} {:>9}  {}",
                c.subject,
                c.name,
                c.symbolic,
                c.valuations,
                c.states,
                c.agreement.label()
            );
            if let Agreement::Disagreement(msg) | Agreement::NotCheckable(msg) = &c.agreement {
                let _ = writeln!(out, "    {msg}");
            }
        }
        let (agree, sym_unknown, orc_unknown, not_checkable, disagree) = self.tally();
        let _ = writeln!(
            out,
            "{} cells: {agree} agree, {sym_unknown} symbolic-unknown, {orc_unknown} \
             oracle-unknown, {not_checkable} not-checkable, {disagree} DISAGREE",
            self.cells.len()
        );
        for s in &self.survivors {
            let _ = writeln!(out, "\nsurvivor {} ({}):", s.id, s.automaton);
            let _ = writeln!(out, "  claim: {}", s.claim);
            for r in &s.rows {
                let _ = writeln!(
                    out,
                    "  [{}] {} @{}: mutant {} / pristine {}{}",
                    r.scenario,
                    r.property,
                    fmt_valuation(&r.valuation),
                    r.mutant,
                    r.pristine,
                    if r.diverged { "  <-- diverged" } else { "" }
                );
            }
            let _ = writeln!(out, "  conclusion: {}", s.conclusion);
        }
        out
    }

    /// Serialises the report in the repo's hand-rolled JSON style.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str("  \"generated_by\": \"oracle_diff\",\n");
        let (agree, sym_unknown, orc_unknown, not_checkable, disagree) = self.tally();
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"cells\": {},\n", self.cells.len()));
        out.push_str(&format!("    \"agree\": {agree},\n"));
        out.push_str(&format!("    \"symbolic_unknown\": {sym_unknown},\n"));
        out.push_str(&format!("    \"oracle_unknown\": {orc_unknown},\n"));
        out.push_str(&format!("    \"not_checkable\": {not_checkable},\n"));
        out.push_str(&format!("    \"disagreements\": {disagree}\n"));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let detail = match &c.agreement {
                Agreement::Disagreement(m) | Agreement::NotCheckable(m) => m.as_str(),
                _ => "",
            };
            out.push_str(&format!(
                "    {{\"subject\": {}, \"cell\": {}, \"symbolic\": {}, \"oracle\": {}, \
                 \"valuations\": {}, \"states\": {}, \"replays\": {}, \"agreement\": {}, \
                 \"detail\": {}}}{}\n",
                q(&c.subject),
                q(&c.name),
                q(&c.symbolic),
                q(&c.oracle),
                c.valuations,
                c.states,
                c.replays,
                q(c.agreement.label()),
                q(detail),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"survivors\": [\n");
        for (i, s) in self.survivors.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": {},\n", q(&s.id)));
            out.push_str(&format!("      \"automaton\": {},\n", q(s.automaton)));
            out.push_str(&format!("      \"claim\": {},\n", q(&s.claim)));
            out.push_str(&format!("      \"equivalent\": {},\n", s.equivalent));
            match s.alt_kill_reappears {
                Some(b) => {
                    out.push_str(&format!("      \"alt_kill_reappears\": {b},\n"));
                }
                None => out.push_str("      \"alt_kill_reappears\": null,\n"),
            }
            out.push_str("      \"rows\": [\n");
            for (j, r) in s.rows.iter().enumerate() {
                let val: Vec<String> = r.valuation.iter().map(i64::to_string).collect();
                out.push_str(&format!(
                    "        {{\"scenario\": {}, \"property\": {}, \"valuation\": [{}], \
                     \"mutant\": {}, \"pristine\": {}, \"diverged\": {}}}{}\n",
                    q(&r.scenario),
                    q(&r.property),
                    val.join(", "),
                    q(&r.mutant),
                    q(&r.pristine),
                    r.diverged,
                    if j + 1 < s.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("      ],\n");
            out.push_str(&format!("      \"conclusion\": {}\n", q(&s.conclusion)));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.survivors.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_models::BvBroadcastModel;

    #[test]
    fn verified_cell_agrees_at_small_params() {
        let model = BvBroadcastModel::new();
        let (name, spec) = model.table2_specs().remove(0);
        let checker = Checker::new();
        let cfg = DiffConfig {
            max_valuations: 2,
            ..DiffConfig::smoke()
        };
        let cell = diff_cell(
            "table2",
            &format!("bv-broadcast/{name}"),
            &model.ta,
            &spec,
            &model.justice(),
            &checker,
            &cfg,
        );
        assert!(
            matches!(cell.agreement, Agreement::Agree),
            "{:?}: {}",
            cell.agreement,
            cell.oracle
        );
        assert!(cell.states > 0);
    }

    #[test]
    fn violated_cell_replays_concretely() {
        // A mutant the matrix kills: its counterexample must replay.
        let (_, corpus) = bv_broadcast_corpus();
        let m = corpus
            .into_iter()
            .find(|m| m.id == "guard.flip.echo1_low")
            .or_else(|| {
                let (_, c) = bv_broadcast_corpus();
                c.into_iter().find(|m| static_rejection(&m.ta).is_none())
            })
            .expect("some checkable bv mutant");
        let bv = BvBroadcastModel::new();
        let properties = bv_kill_properties(&bv);
        let justice = Justice::from_rules(&m.ta);
        let checker = Checker::new();
        let cfg = DiffConfig::smoke();
        let mut replays = 0;
        for (prop, spec) in &properties {
            let cell = diff_cell(
                "mutant/bv_broadcast",
                &format!("{}/{prop}", m.id),
                &m.ta,
                spec,
                &justice,
                &checker,
                &cfg,
            );
            assert!(
                !cell.agreement.is_failure(),
                "{}: {:?}",
                cell.name,
                cell.agreement
            );
            replays += cell.replays;
        }
        // At least one property kills this mutant, so at least one
        // counterexample went through the oracle's transition relation.
        assert!(replays > 0, "expected a replayed counterexample");
    }
}
