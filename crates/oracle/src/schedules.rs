//! Independent enumeration of context schedules.
//!
//! The checker's allocation-free [`count_schedules`] walks the schedule
//! lattice with bit-twiddled subset iteration; this module re-derives
//! the same chain language with plain recursive set manipulation from
//! [`GuardInfo`]'s *raw data* (`implies`, `initially_possible`,
//! `raisers`) — none of its helper methods are called. The property
//! test in `tests/schedule_pin.rs` pins the two implementations against
//! each other, and [`observed_context_chains`] closes the loop from the
//! concrete side: every context chain realised by an actual run of the
//! counter system must appear in the enumerated set.
//!
//! [`count_schedules`]: holistic_checker::count_schedules

use std::collections::BTreeSet;

use holistic_checker::GuardInfo;
use holistic_ta::{Config, ThresholdAutomaton};

use crate::concrete::{ConcreteError, ConcreteSystem};

/// Whether `ctx` is closed under the implication relation: every guard
/// implied by a member is itself a member.
fn closed(info: &GuardInfo, ctx: u64) -> bool {
    (0..info.guards.len())
        .filter(|&g| ctx & (1 << g) != 0)
        .all(|g| info.implies[g] & !ctx == 0)
}

/// Whether firing rules available under `ctx` can newly raise exactly
/// the guards in `set`: some rule whose guard needs only `ctx` must
/// update a variable of every guard in `set`.
fn can_raise(info: &GuardInfo, set: u64, ctx: u64) -> bool {
    info.raisers
        .iter()
        .any(|&(needs, raises)| needs & !ctx == 0 && set & !raises == 0)
}

/// All subsets of the guard indices in `from` (as masks), including the
/// empty set — built by plain recursion over the index list.
fn subsets(from: &[usize]) -> Vec<u64> {
    let mut out = vec![0u64];
    for &g in from {
        let bit = 1u64 << g;
        let prior = out.clone();
        out.extend(prior.into_iter().map(|m| m | bit));
    }
    out
}

/// Enumerates every context schedule of `info` as an explicit chain of
/// context masks, capped at `cap` chains. Returns the chains and
/// whether the cap was hit.
///
/// A chain is a strictly increasing sequence of implication-closed
/// contexts: it starts at any closed subset of the initially-possible
/// guards, and each step adds a non-empty raisable set of new guards
/// while staying closed. Every prefix is itself a schedule, so it
/// appears in the output in its own right.
pub fn enumerate_context_chains(info: &GuardInfo, cap: usize) -> (Vec<Vec<u64>>, bool) {
    let all_guards: Vec<usize> = (0..info.guards.len()).collect();
    let initial_guards: Vec<usize> = all_guards
        .iter()
        .copied()
        .filter(|&g| info.initially_possible & (1 << g) != 0)
        .collect();
    let mut chains: Vec<Vec<u64>> = Vec::new();
    let mut capped = false;
    for start in subsets(&initial_guards) {
        if !closed(info, start) {
            continue;
        }
        extend_chain(
            info,
            &all_guards,
            vec![start],
            &mut chains,
            cap,
            &mut capped,
        );
        if capped {
            break;
        }
    }
    (chains, capped)
}

fn extend_chain(
    info: &GuardInfo,
    all_guards: &[usize],
    chain: Vec<u64>,
    chains: &mut Vec<Vec<u64>>,
    cap: usize,
    capped: &mut bool,
) {
    if chains.len() >= cap {
        *capped = true;
        return;
    }
    let current = *chain.last().unwrap();
    chains.push(chain.clone());
    let remaining: Vec<usize> = all_guards
        .iter()
        .copied()
        .filter(|&g| current & (1 << g) == 0)
        .collect();
    for step in subsets(&remaining) {
        if step == 0 {
            continue;
        }
        if !can_raise(info, step, current) || !closed(info, current | step) {
            continue;
        }
        let mut next = chain.clone();
        next.push(current | step);
        extend_chain(info, all_guards, next, chains, cap, capped);
        if *capped {
            return;
        }
    }
}

/// The context of a configuration: the set of guards concretely true
/// under its shared-variable values.
fn context_of(info: &GuardInfo, config: &Config, params: &[i64]) -> u64 {
    let mut ctx = 0u64;
    for (g, atom) in info.guards.iter().enumerate() {
        if crate::concrete::eval_var_expr(&atom.lhs, &config.shared)
            >= crate::concrete::eval_param_expr(&atom.rhs, params)
        {
            ctx |= 1 << g;
        }
    }
    ctx
}

/// Collects every context chain realised by a concrete run of the
/// counter system at `params`, by depth-first search over
/// `(configuration, chain)` states, capped at `max_states` expansions.
/// Returns the chain set and whether the search was exhaustive.
///
/// # Errors
///
/// [`ConcreteError`] when the valuation is inadmissible.
pub fn observed_context_chains(
    ta: &ThresholdAutomaton,
    info: &GuardInfo,
    params: &[i64],
    max_states: usize,
) -> Result<(BTreeSet<Vec<u64>>, bool), ConcreteError> {
    let sys = ConcreteSystem::new(ta, params)?;
    let mut chains: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut seen: BTreeSet<(Vec<i64>, Vec<i64>, Vec<u64>)> = BTreeSet::new();
    let mut stack: Vec<(Config, Vec<u64>)> = Vec::new();
    let mut complete = true;
    for init in sys.initial_configs() {
        let chain = vec![context_of(info, &init, params)];
        stack.push((init, chain));
    }
    let mut expansions = 0usize;
    while let Some((config, chain)) = stack.pop() {
        if !seen.insert((
            config.counters.clone(),
            config.shared.clone(),
            chain.clone(),
        )) {
            continue;
        }
        chains.insert(chain.clone());
        expansions += 1;
        if expansions >= max_states {
            complete = false;
            break;
        }
        for (_, succ) in sys.successors(&config) {
            let ctx = context_of(info, &succ, params);
            let mut next = chain.clone();
            if ctx != *next.last().unwrap() {
                next.push(ctx);
            }
            stack.push((succ, next));
        }
    }
    Ok((chains, complete))
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_checker::{count_schedules, enumerate_schedules};
    use holistic_models::BvBroadcastModel;

    #[test]
    fn bv_broadcast_chain_count_matches_checker() {
        let model = BvBroadcastModel::new();
        let info = GuardInfo::analyse(&model.ta).unwrap();
        let (chains, capped) = enumerate_context_chains(&info, 1_000_000);
        assert!(!capped);
        let (count, counting_capped) = count_schedules(&info, 1_000_000);
        assert!(!counting_capped);
        assert_eq!(chains.len(), count);
        // And the chains themselves coincide with the checker's
        // materialised enumeration, as sets.
        let mut ours: Vec<Vec<u64>> = chains;
        ours.sort();
        let mut theirs: Vec<Vec<u64>> = enumerate_schedules(&info, 1_000_000)
            .schedules
            .into_iter()
            .map(|s| s.contexts)
            .collect();
        theirs.sort();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn observed_chains_are_enumerated_chains() {
        let model = BvBroadcastModel::new();
        let info = GuardInfo::analyse(&model.ta).unwrap();
        let (chains, capped) = enumerate_context_chains(&info, 1_000_000);
        assert!(!capped);
        let enumerated: BTreeSet<Vec<u64>> = chains.into_iter().collect();
        let (observed, complete) =
            observed_context_chains(&model.ta, &info, &[4, 1, 1], 2_000_000).unwrap();
        assert!(complete);
        assert!(!observed.is_empty());
        for chain in &observed {
            assert!(
                enumerated.contains(chain),
                "concrete run realised a chain the checker does not enumerate: {chain:?}"
            );
        }
    }
}
