//! Replaying symbolic counterexamples through the oracle's own
//! transition relation.
//!
//! [`Counterexample::trace`](holistic_checker::Counterexample::trace)
//! already re-checks a counterexample against
//! [`holistic_ta::CounterSystem`]; this module repeats the exercise
//! against the *oracle's* independently-implemented semantics
//! ([`ConcreteSystem`]), so a bug shared by the encoding and the `ta`
//! semantics would still be caught. Every firing is expanded and
//! checked step by step — acceleration factors get no credit — and the
//! violated query is then re-evaluated on the concrete trace.

use holistic_checker::Counterexample;
use holistic_ltl::{classify, Justice, Ltl, Query};
use holistic_ta::{Config, LocationId, ThresholdAutomaton};

use crate::concrete::ConcreteSystem;

/// Why a symbolic counterexample failed oracle replay. Any of these on
/// a checker-reported counterexample is a hard differential failure.
#[derive(Clone, Debug)]
pub enum ReplayFailure {
    /// The spec no longer classifies (wrong automaton for this CE).
    Fragment(String),
    /// The reported query index is out of range.
    QueryIndex(usize, usize),
    /// The counterexample's parameters or initial configuration are
    /// malformed.
    Setup(String),
    /// A firing in the sequence is illegal under the oracle semantics.
    IllegalStep {
        /// Index of the offending accelerated step.
        step: usize,
        /// What went wrong.
        reason: String,
    },
    /// The run replays, but the claimed violation does not hold on it.
    Vacuous(String),
}

impl std::fmt::Display for ReplayFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayFailure::Fragment(m) => write!(f, "classification failed: {m}"),
            ReplayFailure::QueryIndex(i, n) => {
                write!(f, "query index {i} out of range ({n} queries)")
            }
            ReplayFailure::Setup(m) => write!(f, "malformed counterexample: {m}"),
            ReplayFailure::IllegalStep { step, reason } => {
                write!(f, "illegal firing at accelerated step {step}: {reason}")
            }
            ReplayFailure::Vacuous(m) => write!(f, "vacuous counterexample: {m}"),
        }
    }
}

impl std::error::Error for ReplayFailure {}

/// A successfully replayed counterexample.
#[derive(Clone, Debug)]
pub struct ReplayedCe {
    /// `"safety"` or `"liveness"`.
    pub kind: &'static str,
    /// Single-step length of the expanded concrete trace.
    pub trace_len: usize,
}

fn all_empty(config: &Config, locs: &[LocationId]) -> bool {
    locs.iter().all(|&l| config.counters[l.0] == 0)
}

/// Replays `ce` (reported against query `query_index` of `spec`)
/// through the oracle's concrete semantics and re-evaluates the
/// violation on the resulting trace.
///
/// # Errors
///
/// [`ReplayFailure`] describing the first discrepancy.
pub fn replay_counterexample(
    ta: &ThresholdAutomaton,
    spec: &Ltl,
    justice: &Justice,
    query_index: usize,
    ce: &Counterexample,
) -> Result<ReplayedCe, ReplayFailure> {
    let queries = classify(ta, spec).map_err(|e| ReplayFailure::Fragment(format!("{e:?}")))?;
    let Some(query) = queries.get(query_index) else {
        return Err(ReplayFailure::QueryIndex(query_index, queries.len()));
    };
    let sys = ConcreteSystem::new(ta, &ce.params)
        .map_err(|e| ReplayFailure::Setup(format!("parameters {:?}: {e}", ce.params)))?;

    // The initial configuration must be a genuine initial state.
    let init = &ce.initial;
    if init.counters.len() != ta.locations.len() || init.shared.len() != ta.variables.len() {
        return Err(ReplayFailure::Setup("initial configuration arity".into()));
    }
    if init.counters.iter().any(|&c| c < 0) {
        return Err(ReplayFailure::Setup("negative counter".into()));
    }
    if init.counters.iter().sum::<i64>() != sys.size() {
        return Err(ReplayFailure::Setup(format!(
            "initial configuration has {} processes, size expression gives {}",
            init.counters.iter().sum::<i64>(),
            sys.size()
        )));
    }
    for (i, loc) in ta.locations.iter().enumerate() {
        if !loc.initial && init.counters[i] != 0 {
            return Err(ReplayFailure::Setup(format!(
                "non-initial location {} populated at step 0",
                loc.name
            )));
        }
    }
    if init.shared.iter().any(|&x| x != 0) {
        return Err(ReplayFailure::Setup(
            "shared variable non-zero at step 0".into(),
        ));
    }

    // Expand every accelerated firing one step at a time.
    let mut trace = vec![init.clone()];
    for (i, step) in ce.steps.iter().enumerate() {
        for _ in 0..step.times {
            let next = sys
                .fire(trace.last().unwrap(), step.rule)
                .map_err(|reason| ReplayFailure::IllegalStep { step: i, reason })?;
            trace.push(next);
        }
    }

    // Re-evaluate the violation on the concrete trace.
    let params = &ce.params;
    let (kind, globally_empty, initially) = match query {
        Query::Safety {
            globally_empty,
            initially,
            ..
        } => ("safety", globally_empty, initially),
        Query::Liveness {
            globally_empty,
            initially,
            ..
        } => ("liveness", globally_empty, initially),
    };
    if !initially.eval(&trace[0], params) {
        return Err(ReplayFailure::Vacuous(
            "initial constraint fails at step 0".into(),
        ));
    }
    if let Some(step) = trace.iter().position(|c| !all_empty(c, globally_empty)) {
        return Err(ReplayFailure::Vacuous(format!(
            "globally-empty location populated at step {step}"
        )));
    }
    match query {
        Query::Safety { witnesses, .. } => {
            for (i, w) in witnesses.iter().enumerate() {
                if !trace.iter().any(|c| w.eval(c, params)) {
                    return Err(ReplayFailure::Vacuous(format!(
                        "witness {i} never holds along the run"
                    )));
                }
            }
        }
        Query::Liveness { tail, .. } => {
            let last = trace.last().unwrap();
            if !tail.eval(last, params) {
                return Err(ReplayFailure::Vacuous(
                    "violating tail fails at the final configuration".into(),
                ));
            }
            if !justice.as_prop().eval(last, params) {
                return Err(ReplayFailure::Vacuous(
                    "final configuration is not justice-consistent".into(),
                ));
            }
        }
    }
    Ok(ReplayedCe {
        kind,
        trace_len: trace.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_checker::{Checker, Verdict};
    use holistic_ltl::Prop;
    use holistic_ta::{Guard, TaBuilder};

    fn reach() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("reach");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always()).inc(x, 1);
        b.self_loop(d);
        b.build().unwrap()
    }

    #[test]
    fn checker_counterexample_replays_in_the_oracle() {
        let ta = reach();
        let d = ta.location_by_name("D").unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(d)));
        let justice = Justice::from_rules(&ta);
        let report = Checker::new().check_ltl(&ta, &spec, &justice).unwrap();
        let (index, ce) = report
            .queries
            .iter()
            .enumerate()
            .find_map(|(i, q)| match &q.verdict {
                Verdict::Violated(ce) => Some((i, ce.clone())),
                _ => None,
            })
            .expect("reachable D violates emptiness");
        let replayed = replay_counterexample(&ta, &spec, &justice, index, &ce).unwrap();
        assert_eq!(replayed.kind, "safety");
        assert!(replayed.trace_len >= 2);
    }

    #[test]
    fn tampered_counterexample_is_rejected() {
        let ta = reach();
        let d = ta.location_by_name("D").unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(d)));
        let justice = Justice::from_rules(&ta);
        let report = Checker::new().check_ltl(&ta, &spec, &justice).unwrap();
        let (index, mut ce) = report
            .queries
            .iter()
            .enumerate()
            .find_map(|(i, q)| match &q.verdict {
                Verdict::Violated(ce) => Some((i, (**ce).clone())),
                _ => None,
            })
            .unwrap();
        ce.steps[0].times += 100;
        assert!(matches!(
            replay_counterexample(&ta, &spec, &justice, index, &ce),
            Err(ReplayFailure::IllegalStep { .. })
        ));
    }
}
