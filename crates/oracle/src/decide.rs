//! Deciding classified queries by exhaustive explicit-state search.
//!
//! For one concrete valuation the counter system of an increment-only
//! DAG automaton is finite: each process moves at most `|L|` times, so
//! shared variables are bounded by the total number of increments. The
//! oracle explores it breadth-first with a visited set and decides the
//! checker's [`Query`] shapes directly:
//!
//! * **safety** — a violation is a finite run from an
//!   `initially`-satisfying initial configuration that keeps every
//!   `globally_empty` location empty and realises every witness
//!   proposition somewhere. The BFS runs over product states
//!   `(configuration, witness bitmask)`.
//! * **liveness** — with DAG shape and increment-only updates every
//!   infinite run stabilises in some configuration, and stuttering
//!   there forever is *fair* exactly when the justice proposition holds
//!   of it. A fair violation is therefore a reachable configuration
//!   satisfying both the violating tail and the justice proposition —
//!   the same reduction the symbolic checker applies
//!   (`sim::replay::confirm_counterexample` documents it), evaluated
//!   here by brute force.
//!
//! A state budget keeps hostile inputs (mutants with huge lattices,
//! the naive consensus automaton) from running away; exhausting it
//! yields an honest [`OracleVerdict::Unknown`], never a verdict.

use std::collections::HashMap;

use holistic_ltl::{classify, FragmentError, Justice, Ltl, Prop, Query};
use holistic_ta::{Config, LocationId, ThresholdAutomaton};

use crate::concrete::{ConcreteError, ConcreteSystem};

/// Errors that prevent the oracle from deciding a spec at all.
#[derive(Clone, Debug)]
pub enum OracleError {
    /// The spec falls outside the checkable fragment.
    Fragment(FragmentError),
    /// The valuation is inadmissible for the automaton.
    Concrete(ConcreteError),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Fragment(e) => write!(f, "fragment: {e:?}"),
            OracleError::Concrete(e) => write!(f, "concrete semantics: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A concrete violating run found by the oracle.
#[derive(Clone, Debug)]
pub struct OracleWitness {
    /// `"safety"` or `"liveness"`.
    pub kind: &'static str,
    /// The run, from an initial configuration to the violation point
    /// (for liveness, the configuration the run fairly stalls in).
    pub trace: Vec<Config>,
}

/// The oracle's verdict for one query at one valuation.
#[derive(Clone, Debug)]
pub enum OracleVerdict {
    /// Exhaustive exploration found no violating run.
    Holds,
    /// A concrete violating run exists.
    Violated(OracleWitness),
    /// The oracle could not decide (budget exhausted, or the
    /// stabilisation argument is unavailable on a non-DAG automaton).
    Unknown(String),
}

impl OracleVerdict {
    /// Whether this is a definite verdict (`Holds` or `Violated`).
    pub fn is_definite(&self) -> bool {
        !matches!(self, OracleVerdict::Unknown(_))
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OracleVerdict::Holds => "holds",
            OracleVerdict::Violated(_) => "violated",
            OracleVerdict::Unknown(_) => "unknown",
        }
    }
}

/// One decided query, with exploration statistics.
#[derive(Clone, Debug)]
pub struct OracleDecision {
    /// The verdict.
    pub verdict: OracleVerdict,
    /// Product states explored.
    pub states: usize,
}

fn all_empty(config: &Config, locs: &[LocationId]) -> bool {
    locs.iter().all(|&l| config.counters[l.0] == 0)
}

/// Exhaustive BFS over `(configuration, witness-mask)` product states.
///
/// `witnesses` is empty for liveness (mask stays 0); `accept` decides
/// whether a product state is a violation. Returns the witness trace on
/// violation, `Ok(None)` when the whole space was exhausted without
/// one, and `Err(states)` when the budget ran out first.
struct Search<'a> {
    sys: &'a ConcreteSystem<'a>,
    globally_empty: &'a [LocationId],
    witnesses: &'a [Prop],
    max_states: usize,
}

impl Search<'_> {
    fn witness_mask(&self, config: &Config, prev: u32) -> u32 {
        let mut mask = prev;
        for (i, w) in self.witnesses.iter().enumerate() {
            if mask & (1 << i) == 0 && w.eval(config, self.sys.params()) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Runs the search. `accept(config, mask)` flags a violation.
    fn run(
        &self,
        roots: Vec<Config>,
        accept: impl Fn(&Config, u32) -> bool,
    ) -> (Result<Option<Vec<Config>>, ()>, usize) {
        let mut states: Vec<(Config, u32)> = Vec::new();
        let mut parent: Vec<usize> = Vec::new();
        let mut index: HashMap<(Config, u32), usize> = HashMap::new();
        for root in roots {
            if !all_empty(&root, self.globally_empty) {
                continue;
            }
            let mask = self.witness_mask(&root, 0);
            let key = (root, mask);
            if index.contains_key(&key) {
                continue;
            }
            index.insert(key.clone(), states.len());
            parent.push(usize::MAX);
            states.push(key);
        }
        let mut head = 0;
        while head < states.len() {
            let (config, mask) = states[head].clone();
            if accept(&config, mask) {
                return (Ok(Some(self.trace_back(&states, &parent, head))), head + 1);
            }
            for (_, succ) in self.sys.successors(&config) {
                if !all_empty(&succ, self.globally_empty) {
                    continue;
                }
                let mask = self.witness_mask(&succ, mask);
                let key = (succ, mask);
                if index.contains_key(&key) {
                    continue;
                }
                if states.len() >= self.max_states {
                    return (Err(()), states.len());
                }
                index.insert(key.clone(), states.len());
                parent.push(head);
                states.push(key);
            }
            head += 1;
        }
        (Ok(None), states.len())
    }

    fn trace_back(&self, states: &[(Config, u32)], parent: &[usize], end: usize) -> Vec<Config> {
        let mut trace = Vec::new();
        let mut i = end;
        loop {
            trace.push(states[i].0.clone());
            if parent[i] == usize::MAX {
                break;
            }
            i = parent[i];
        }
        trace.reverse();
        trace
    }
}

/// Decides one classified query at one concrete valuation.
///
/// # Errors
///
/// [`ConcreteError`] when the valuation is inadmissible.
pub fn decide_query(
    ta: &ThresholdAutomaton,
    query: &Query,
    justice: &Justice,
    params: &[i64],
    max_states: usize,
) -> Result<OracleDecision, ConcreteError> {
    let sys = ConcreteSystem::new(ta, params)?;
    match query {
        Query::Safety {
            globally_empty,
            initially,
            witnesses,
        } => {
            let full: u32 = if witnesses.len() >= 32 {
                return Ok(OracleDecision {
                    verdict: OracleVerdict::Unknown("more than 31 witnesses".to_owned()),
                    states: 0,
                });
            } else {
                (1u32 << witnesses.len()) - 1
            };
            let search = Search {
                sys: &sys,
                globally_empty,
                witnesses,
                max_states,
            };
            let roots = sys
                .initial_configs()
                .into_iter()
                .filter(|c| initially.eval(c, params))
                .collect();
            let (found, states) = search.run(roots, |_, mask| mask == full);
            Ok(OracleDecision {
                verdict: match found {
                    Ok(Some(trace)) => OracleVerdict::Violated(OracleWitness {
                        kind: "safety",
                        trace,
                    }),
                    Ok(None) => OracleVerdict::Holds,
                    Err(()) => OracleVerdict::Unknown(format!(
                        "state budget ({max_states}) exhausted after {states} states"
                    )),
                },
                states,
            })
        }
        Query::Liveness {
            globally_empty,
            initially,
            tail,
        } => {
            if ta.topological_locations().is_none() {
                return Ok(OracleDecision {
                    verdict: OracleVerdict::Unknown(
                        "not a DAG: the stabilisation reduction does not apply".to_owned(),
                    ),
                    states: 0,
                });
            }
            let fair_stall = justice.as_prop();
            let search = Search {
                sys: &sys,
                globally_empty,
                witnesses: &[],
                max_states,
            };
            let roots = sys
                .initial_configs()
                .into_iter()
                .filter(|c| initially.eval(c, params))
                .collect();
            let (found, states) = search.run(roots, |config, _| {
                tail.eval(config, params) && fair_stall.eval(config, params)
            });
            Ok(OracleDecision {
                verdict: match found {
                    Ok(Some(trace)) => OracleVerdict::Violated(OracleWitness {
                        kind: "liveness",
                        trace,
                    }),
                    Ok(None) => OracleVerdict::Holds,
                    Err(()) => OracleVerdict::Unknown(format!(
                        "state budget ({max_states}) exhausted after {states} states"
                    )),
                },
                states,
            })
        }
    }
}

/// Decides every query of an LTL spec at one valuation (classification
/// order matches the checker's report order).
///
/// # Errors
///
/// [`OracleError`] when the spec is outside the fragment or the
/// valuation is inadmissible.
pub fn decide_spec(
    ta: &ThresholdAutomaton,
    spec: &Ltl,
    justice: &Justice,
    params: &[i64],
    max_states: usize,
) -> Result<Vec<OracleDecision>, OracleError> {
    let queries = classify(ta, spec).map_err(OracleError::Fragment)?;
    queries
        .iter()
        .map(|q| decide_query(ta, q, justice, params, max_states).map_err(OracleError::Concrete))
        .collect()
}

/// Folds per-query verdicts into one, `Violated` dominating, then
/// `Unknown`, then `Holds` — mirroring
/// [`CheckReport::verdict`](holistic_checker::CheckReport::verdict).
pub fn combined_verdict(decisions: &[OracleDecision]) -> OracleVerdict {
    for d in decisions {
        if let OracleVerdict::Violated(_) = &d.verdict {
            return d.verdict.clone();
        }
    }
    for d in decisions {
        if let OracleVerdict::Unknown(_) = &d.verdict {
            return d.verdict.clone();
        }
    }
    OracleVerdict::Holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ltl::Prop;
    use holistic_ta::{Guard, TaBuilder};

    fn reach() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("reach");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always()).inc(x, 1);
        b.self_loop(d);
        b.build().unwrap()
    }

    #[test]
    fn safety_violation_found_with_trace() {
        let ta = reach();
        let d = ta.location_by_name("D").unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(d)));
        let justice = Justice::from_rules(&ta);
        let decisions = decide_spec(&ta, &spec, &justice, &[3, 0], 10_000).unwrap();
        assert_eq!(decisions.len(), 1);
        match &decisions[0].verdict {
            OracleVerdict::Violated(w) => {
                assert_eq!(w.kind, "safety");
                assert!(w.trace.len() >= 2);
                // The trace really ends with D populated.
                assert!(w.trace.last().unwrap().counters[d.0] >= 1);
            }
            v => panic!("expected violation, got {v:?}"),
        }
    }

    #[test]
    fn liveness_holds_under_justice() {
        // Every process must eventually reach D: justice drains V.
        let ta = reach();
        let d = ta.location_by_name("D").unwrap();
        let v = ta.location_by_name("V").unwrap();
        let spec = Ltl::eventually(Ltl::state(Prop::and(vec![
            Prop::loc_empty(v),
            Prop::loc_nonempty(d),
        ])));
        let justice = Justice::from_rules(&ta);
        let decisions = decide_spec(&ta, &spec, &justice, &[3, 0], 10_000).unwrap();
        assert!(
            matches!(decisions[0].verdict, OracleVerdict::Holds),
            "{:?}",
            decisions[0].verdict
        );
        // Without justice, stalling in V forever is fair: violated.
        let decisions = decide_spec(&ta, &spec, &Justice::none(), &[3, 0], 10_000).unwrap();
        assert!(matches!(
            decisions[0].verdict,
            OracleVerdict::Violated(ref w) if w.kind == "liveness"
        ));
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        // "Some location is always populated" holds (9 processes exist),
        // so the search must exhaust the space — which the tiny budget
        // forbids: honest Unknown, not Holds.
        let ta = reach();
        let d = ta.location_by_name("D").unwrap();
        let v = ta.location_by_name("V").unwrap();
        let spec = Ltl::always(Ltl::state(Prop::or(vec![
            Prop::loc_nonempty(v),
            Prop::loc_nonempty(d),
        ])));
        let justice = Justice::from_rules(&ta);
        let decisions = decide_spec(&ta, &spec, &justice, &[9, 0], 2).unwrap();
        assert!(
            matches!(decisions[0].verdict, OracleVerdict::Unknown(_)),
            "{:?}",
            decisions[0].verdict
        );
        // With an adequate budget the same query exhausts and holds.
        let decisions = decide_spec(&ta, &spec, &justice, &[9, 0], 10_000).unwrap();
        assert!(matches!(decisions[0].verdict, OracleVerdict::Holds));
    }
}
