//! The oracle's own concrete counter-system semantics.
//!
//! This module deliberately re-derives everything from the raw automaton
//! data — linear-expression evaluation, resilience checking, guard
//! truth, enabledness, firing — instead of calling
//! [`holistic_ta::CounterSystem`]'s equivalents. The point of the oracle
//! is to disagree with the main pipeline whenever the main pipeline is
//! wrong, so the only things shared with it are the automaton *data
//! structures* and the [`Config`] state record (a dumb pair of vectors
//! that [`Prop::eval`](holistic_ltl::Prop::eval) is defined over).

use std::fmt;

use holistic_ta::{
    Config, Guard, GuardCmp, ParamCmp, ParamConstraint, ParamExpr, RuleId, ThresholdAutomaton,
    VarExpr,
};

/// Errors from instantiating a [`ConcreteSystem`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConcreteError {
    /// Wrong number of parameter values.
    ParamArity {
        /// Parameters declared by the automaton.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// The valuation violates the resilience condition.
    Resilience,
    /// The size expression evaluates to a non-positive process count.
    BadSize(i64),
}

impl fmt::Display for ConcreteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteError::ParamArity { expected, got } => {
                write!(f, "expected {expected} parameter values, got {got}")
            }
            ConcreteError::Resilience => write!(f, "valuation violates the resilience condition"),
            ConcreteError::BadSize(s) => write!(f, "non-positive process count {s}"),
        }
    }
}

impl std::error::Error for ConcreteError {}

/// Evaluates a parameter-side linear expression from its raw terms.
pub fn eval_param_expr(e: &ParamExpr, params: &[i64]) -> i64 {
    e.iter().map(|(p, c)| c * params[p.0]).sum::<i64>() + e.constant_term()
}

/// Evaluates a shared-variable-side linear expression from its raw
/// terms.
pub fn eval_var_expr(e: &VarExpr, shared: &[i64]) -> i64 {
    e.iter().map(|(x, c)| c * shared[x.0]).sum::<i64>()
}

/// Decides one resilience constraint concretely.
pub fn constraint_holds(c: &ParamConstraint, params: &[i64]) -> bool {
    let l = eval_param_expr(&c.lhs, params);
    let r = eval_param_expr(&c.rhs, params);
    match c.cmp {
        ParamCmp::Gt => l > r,
        ParamCmp::Ge => l >= r,
        ParamCmp::Eq => l == r,
        ParamCmp::Le => l <= r,
        ParamCmp::Lt => l < r,
    }
}

/// Decides a conjunction of threshold guards concretely.
pub fn guard_holds(g: &Guard, shared: &[i64], params: &[i64]) -> bool {
    g.atoms().iter().all(|a| {
        let l = eval_var_expr(&a.lhs, shared);
        let r = eval_param_expr(&a.rhs, params);
        match a.cmp {
            GuardCmp::Ge => l >= r,
            GuardCmp::Lt => l < r,
        }
    })
}

/// A threshold automaton instantiated with one concrete parameter
/// valuation — the oracle's transition system.
#[derive(Debug)]
pub struct ConcreteSystem<'a> {
    ta: &'a ThresholdAutomaton,
    params: Vec<i64>,
    size: i64,
    /// Non-self-loop rules (self-loops never change a configuration, so
    /// the reachability relation ignores them).
    proper: Vec<RuleId>,
}

impl<'a> ConcreteSystem<'a> {
    /// Instantiates `ta` at `params`, checking arity, resilience and a
    /// positive process count with the oracle's own arithmetic.
    ///
    /// # Errors
    ///
    /// [`ConcreteError`] when the valuation is inadmissible.
    pub fn new(ta: &'a ThresholdAutomaton, params: &[i64]) -> Result<Self, ConcreteError> {
        if params.len() != ta.params.len() {
            return Err(ConcreteError::ParamArity {
                expected: ta.params.len(),
                got: params.len(),
            });
        }
        if !ta.resilience.iter().all(|c| constraint_holds(c, params)) {
            return Err(ConcreteError::Resilience);
        }
        let size = eval_param_expr(&ta.size_expr, params);
        if size <= 0 {
            return Err(ConcreteError::BadSize(size));
        }
        let proper = (0..ta.rules.len())
            .map(RuleId)
            .filter(|&r| !ta.rules[r.0].is_self_loop())
            .collect();
        Ok(ConcreteSystem {
            ta,
            params: params.to_vec(),
            size,
            proper,
        })
    }

    /// The automaton.
    pub fn ta(&self) -> &ThresholdAutomaton {
        self.ta
    }

    /// The parameter valuation.
    pub fn params(&self) -> &[i64] {
        &self.params
    }

    /// The concrete process count (`size_expr` at the valuation).
    pub fn size(&self) -> i64 {
        self.size
    }

    /// Every initial configuration: all distributions of `size`
    /// processes over the initial locations, shared variables zero.
    pub fn initial_configs(&self) -> Vec<Config> {
        let initials = self.ta.initial_locations();
        let mut out = Vec::new();
        let mut counters = vec![0i64; self.ta.locations.len()];
        self.distribute(&initials, 0, self.size, &mut counters, &mut out);
        out
    }

    fn distribute(
        &self,
        initials: &[holistic_ta::LocationId],
        idx: usize,
        remaining: i64,
        counters: &mut Vec<i64>,
        out: &mut Vec<Config>,
    ) {
        if idx + 1 == initials.len() {
            counters[initials[idx].0] = remaining;
            out.push(Config {
                counters: counters.clone(),
                shared: vec![0; self.ta.variables.len()],
            });
            counters[initials[idx].0] = 0;
            return;
        }
        for k in 0..=remaining {
            counters[initials[idx].0] = k;
            self.distribute(initials, idx + 1, remaining - k, counters, out);
            counters[initials[idx].0] = 0;
        }
    }

    /// Whether rule `r` can fire in `config` (source populated, guard
    /// true). Self-loops are reported as not enabled: they never change
    /// the configuration.
    pub fn is_enabled(&self, config: &Config, r: RuleId) -> bool {
        let rule = &self.ta.rules[r.0];
        !rule.is_self_loop()
            && config.counters[rule.from.0] >= 1
            && guard_holds(&rule.guard, &config.shared, &self.params)
    }

    /// Fires rule `r` once. The caller must have checked enabledness.
    pub fn apply(&self, config: &Config, r: RuleId) -> Config {
        let rule = &self.ta.rules[r.0];
        let mut next = config.clone();
        next.counters[rule.from.0] -= 1;
        next.counters[rule.to.0] += 1;
        for &(v, amount) in &rule.update {
            next.shared[v.0] += amount as i64;
        }
        next
    }

    /// Fires rule `r` once with full legality checking — the entry point
    /// for replaying symbolic counterexamples through the oracle's
    /// transition relation.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the firing is illegal.
    pub fn fire(&self, config: &Config, r: RuleId) -> Result<Config, String> {
        let rule = &self.ta.rules[r.0];
        if rule.is_self_loop() {
            // Legal but a no-op; accelerated counterexamples never
            // contain self-loops, so flag it as suspicious.
            return Err(format!("rule {} is a self-loop", rule.name));
        }
        if config.counters[rule.from.0] < 1 {
            return Err(format!(
                "rule {} fires from empty location {}",
                rule.name,
                self.ta.location_name(rule.from)
            ));
        }
        if !guard_holds(&rule.guard, &config.shared, &self.params) {
            return Err(format!("guard of rule {} does not hold", rule.name));
        }
        Ok(self.apply(config, r))
    }

    /// All one-step successors of `config` under proper rules.
    pub fn successors(&self, config: &Config) -> Vec<(RuleId, Config)> {
        self.proper
            .iter()
            .filter(|&&r| self.is_enabled(config, r))
            .map(|&r| (r, self.apply(config, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{AtomicGuard, TaBuilder};

    fn tiny() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("tiny");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let w = b.initial_location("W");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always()).inc(x, 1);
        b.rule(
            "r2",
            w,
            d,
            Guard::atom(AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1))),
        );
        b.self_loop(d);
        b.build().unwrap()
    }

    #[test]
    fn rejects_inadmissible_valuations() {
        let ta = tiny();
        assert_eq!(
            ConcreteSystem::new(&ta, &[3]).unwrap_err(),
            ConcreteError::ParamArity {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            ConcreteSystem::new(&ta, &[1, 1]).unwrap_err(),
            ConcreteError::Resilience
        );
    }

    #[test]
    fn initial_configs_enumerate_all_distributions() {
        let ta = tiny();
        let sys = ConcreteSystem::new(&ta, &[3, 0]).unwrap();
        let inits = sys.initial_configs();
        // 3 processes over {V, W}: 4 distributions.
        assert_eq!(inits.len(), 4);
        for c in &inits {
            assert_eq!(c.counters.iter().sum::<i64>(), 3);
            assert!(c.shared.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn guard_gates_enabledness() {
        let ta = tiny();
        let sys = ConcreteSystem::new(&ta, &[3, 0]).unwrap();
        let r2 = ta.rule_by_name("r2").unwrap();
        let start = Config {
            counters: vec![1, 2, 0],
            shared: vec![0],
        };
        assert!(!sys.is_enabled(&start, r2));
        let r1 = ta.rule_by_name("r1").unwrap();
        let after = sys.fire(&start, r1).unwrap();
        assert_eq!(after.shared, vec![1]);
        assert!(sys.is_enabled(&after, r2));
        // Overdraft is rejected.
        let drained = Config {
            counters: vec![0, 2, 1],
            shared: vec![1],
        };
        assert!(sys.fire(&drained, r1).is_err());
    }
}
