//! Property test pinning the checker's allocation-free
//! `count_schedules` against the oracle's independent context-chain
//! enumeration, over randomly generated DAG threshold automata.
//!
//! Three layers agree for every generated automaton:
//!
//! 1. the bit-twiddled streaming *count* equals the length of the
//!    oracle's recursively materialised chain list;
//! 2. the checker's materialised enumeration and the oracle's are
//!    equal *as sets of chains* — not just equinumerous;
//! 3. every context chain realised by an actual run of the concrete
//!    counter system at a small valuation appears in the enumerated
//!    set (the enumeration over-approximates real behaviour, never
//!    under-approximates it).

use std::collections::BTreeSet;

use holistic_checker::{count_schedules, enumerate_schedules, GuardInfo};
use holistic_mutate::random_ta;
use holistic_oracle::{enumerate_context_chains, observed_context_chains};
use proptest::prelude::*;
use rand::SeedableRng;

const CAP: usize = 200_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_language_pins_count_schedules(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let info = GuardInfo::analyse(&ta).expect("generated automata stay in the fragment");

        let (ours, ours_capped) = enumerate_context_chains(&info, CAP);
        let (count, count_capped) = count_schedules(&info, CAP);
        prop_assert_eq!(ours_capped, count_capped);
        if ours_capped {
            // Both hit the cap: nothing sharper to compare.
            return Ok(());
        }
        prop_assert_eq!(ours.len(), count);

        let theirs = enumerate_schedules(&info, CAP);
        prop_assert!(!theirs.capped());
        let mut ours_sorted = ours;
        ours_sorted.sort();
        let mut theirs_sorted: Vec<Vec<u64>> =
            theirs.schedules.into_iter().map(|s| s.contexts).collect();
        theirs_sorted.sort();
        prop_assert_eq!(&ours_sorted, &theirs_sorted);

        // Concrete cross-check at the smallest interesting valuation:
        // chains the counter system actually realises must be in the
        // enumerated language (containment holds even if the bounded
        // walk is incomplete).
        let enumerated: BTreeSet<Vec<u64>> = ours_sorted.into_iter().collect();
        let (observed, _complete) = observed_context_chains(&ta, &info, &[4, 1], 100_000)
            .expect("[4,1] is admissible for the generator's resilience");
        prop_assert!(!observed.is_empty());
        for chain in &observed {
            prop_assert!(
                enumerated.contains(chain),
                "concrete run realised chain {:?} which the enumeration misses",
                chain
            );
        }
    }
}
