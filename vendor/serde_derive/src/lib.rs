//! No-op derive macros for the offline `serde` stand-in: the workspace
//! never serializes, so deriving expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; exists so `#[derive(Serialize)]` compiles.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; exists so `#[derive(Deserialize)]` compiles.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
