//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of `rand` it actually uses: [`Rng`] with
//! `gen_range`/`gen_bool`/`gen`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::choose`]. The generator is
//! SplitMix64 — deterministic, `Clone`, and plenty for randomized
//! testing (this is *not* a cryptographic RNG, and neither caller needs
//! one).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, the standard unit-interval trick.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with an obvious "uniform over the whole type" distribution.
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                debug_assert!(low <= high);
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                // Modulo bias is < 2⁻⁶⁴ for the ranges used here.
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (low as i128).wrapping_add((draw % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "empty range in gen_range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper to turn an exclusive bound into an inclusive one.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> $t { self - 1 }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`. Not cryptographic.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[..8]);
            StdRng::seed_from_u64(u64::from_le_bytes(bytes))
        }

        fn seed_from_u64(state: u64) -> StdRng {
            // Scramble once so that small consecutive seeds do not
            // produce correlated first outputs.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence-related helpers (`rand::seq` subset).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = usize::sample_inclusive(rng, 0, self.len() - 1);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u: usize = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
