//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box`, `criterion_group!`, `criterion_main!` —
//! with a much simpler measurement model: each bench runs for a small
//! fixed number of iterations and the mean wall-clock time is printed.
//! No statistics, no HTML reports; enough to compare orders of
//! magnitude and to keep `cargo bench` compiling offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `iters` times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations (criterion's sample
    /// count; the stub uses it directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!("bench {}/{id}: {} iters, mean {mean:?}", self.name, b.iters);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
