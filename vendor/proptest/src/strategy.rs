//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a sampler. Strategies are sampled by reference so range
/// expressions (which are `Clone`) and captured closures both work.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, re-sampling up to a bounded
    /// number of times (then panicking, like proptest's rejection cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

impl<T: rand::SampleUniform + rand::One> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);
