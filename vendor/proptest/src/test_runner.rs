//! The case runner: deterministic seeds, panic capture, failure
//! reporting (no shrinking).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (`proptest::test_runner::ProptestConfig` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default is 256; the stub keeps it moderate because
        // several call sites rely on the default for heavyweight cases.
        ProptestConfig { cases: 128 }
    }
}

/// A failed test case (the `Err` of a property body).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `config.cases` cases of the property `f`. Each case receives a
/// deterministically seeded RNG; `f` returns the case description and
/// the body's outcome. Panics (with seed and inputs) on the first
/// failing case.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => fnv1a(name.as_bytes()),
    };
    for case in 0..config.cases {
        let seed = base
            .wrapping_add(case as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        match outcome {
            Ok((_, Ok(()))) => {}
            Ok((case_desc, Err(e))) => panic!(
                "property {name} failed at case {case}/{} (seed {seed}): {e}\n  inputs: {case_desc}",
                config.cases
            ),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                panic!(
                    "property {name} panicked at case {case}/{} (seed {seed}): {msg}",
                    config.cases
                );
            }
        }
    }
}

#[cfg(test)]
trait NextU64Public {
    fn next_u64_public(&mut self) -> u64;
}

#[cfg(test)]
impl NextU64Public for TestRng {
    fn next_u64_public(&mut self) -> u64 {
        rand::RngCore::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(
            x in 0u8..=1,
            n in 3usize..=6,
            v in prop::collection::vec(0i64..10, 2..=5),
        ) {
            prop_assert!(x <= 1);
            prop_assert!((3..=6).contains(&n));
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
        }

        #[test]
        fn flat_map_and_just(
            pair in (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..=1, n)))
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            run_cases(&ProptestConfig::with_cases(10), "always_fails", |_rng| {
                ("x = 3; ".to_string(), Err(TestCaseError::fail("nope")))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x = 3"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            first.push(rng.next_u64_public());
            (String::new(), Ok(()))
        });
        let mut second = Vec::new();
        run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            second.push(rng.next_u64_public());
            (String::new(), Ok(()))
        });
        assert_eq!(first, second);
    }
}
