//! `any::<T>()` — whole-type strategies.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-type strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The whole-type strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A uniform strategy over all of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for whole-type sampling via [`rand::Standard`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for StandardStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                StandardStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
