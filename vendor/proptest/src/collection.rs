//! `prop::collection` — collection strategies.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Lengths acceptable to [`vec`]: an exact `usize` or a range.
pub trait SizeRange {
    /// Inclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// A strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
