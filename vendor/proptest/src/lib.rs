//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], `any::<bool>()`, `prop::collection::vec`,
//! `prop::array::uniform3`, the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (reproducible across runs and machines;
//! override with `PROPTEST_SEED`), and failing inputs are reported but
//! **not shrunk** — rerun with the printed seed to debug.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u8..=1, v in prop::collection::vec(0u64..10, 3)) {
///         prop_assert!(x <= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __case = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (__case, __outcome)
                });
            }
        )*
    };
}

/// Fails the enclosing property (without panicking through the runner)
/// if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            ::std::format!($($fmt)+)
        );
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: `{:?}` == `{:?}`", __a, __b);
    }};
}

/// Discards the current case if the assumption does not hold. The stub
/// counts a discarded case as passed (no retry loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
