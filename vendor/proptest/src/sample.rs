//! `prop::sample` — choosing among fixed alternatives.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy drawing one element of a fixed vector uniformly.
#[derive(Clone, Debug)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].clone()
    }
}

/// One of the given values, uniformly.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty set");
    Select(options)
}
