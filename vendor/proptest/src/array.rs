//! `prop::array` — fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `[S::Value; N]` from one element strategy.
#[derive(Clone, Debug)]
pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

/// An array of `N` independent samples of `element`.
pub fn uniform<S: Strategy, const N: usize>(element: S) -> ArrayStrategy<S, N> {
    ArrayStrategy { element }
}

macro_rules! uniform_n {
    ($($fn_name:ident => $n:literal),*) => {$(
        /// An array of independent samples of `element`.
        pub fn $fn_name<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
            ArrayStrategy { element }
        }
    )*};
}
uniform_n!(uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5);
