//! Offline stand-in for `serde`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing actually serializes (there is no
//! `serde_json` in the tree). This stub provides the two trait names
//! and re-exports no-op derive macros so the annotations compile
//! without crates.io access. If real serialization is ever needed,
//! replace this with the real crate.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
