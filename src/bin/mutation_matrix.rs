//! The mutation kill-matrix driver.
//!
//! Seeds semantic bugs into the verified automata (via
//! `holistic-mutate`), runs the Table-2 property matrix over every
//! mutant, and reports which properties killed which mutants — with
//! every kill confirmed by replaying the counterexample through the
//! concrete counter-system semantics.
//!
//! ```text
//! cargo run --release --bin mutation_matrix                       # both corpora
//! cargo run --release --bin mutation_matrix -- --automaton bv     # bv-broadcast only
//! cargo run --release --bin mutation_matrix -- --smoke            # CI subset (10 bv mutants)
//! cargo run --release --bin mutation_matrix -- --gate 0.9         # exit 1 below 90% caught
//! cargo run --release --bin mutation_matrix -- --out kill.json    # write the JSON report
//! cargo run --release --bin mutation_matrix -- --checkpoint ck/   # record per-cell progress
//! cargo run --release --bin mutation_matrix -- --resume ck/       # skip completed cells
//! ```
//!
//! `--checkpoint DIR` runs every (mutant, property) cell under the
//! resilient supervisor, recording each finished cell to `DIR` as it
//! completes. `--resume DIR` is the same supervised mode but insists
//! the checkpoint already exists: a run killed midway restarts with
//! every completed cell loaded from disk instead of re-verified. Each
//! corpus records under its own subdirectory of `DIR` (`bv_broadcast/`,
//! `simplified_consensus/`), so `--automaton all` keeps the two
//! checkpoints separate.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use holistic_ltl::Justice;
use holistic_mutate::{
    bv_broadcast_corpus, bv_kill_properties, run_kill_matrix, simplified_corpus,
    simplified_kill_properties, smoke_ids, KillConfig, KillMatrix,
};

struct Options {
    automaton: String,
    smoke: bool,
    workers: usize,
    out: Option<String>,
    gate: Option<f64>,
    budget_secs: u64,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        automaton: "all".to_owned(),
        smoke: false,
        workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
        out: None,
        gate: None,
        budget_secs: 60,
        checkpoint: None,
        resume: false,
    };
    let args: Vec<String> = env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--automaton" => {
                opts.automaton = value(i)?.clone();
                i += 2;
            }
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            "--threads" => {
                opts.workers = value(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(value(i)?.clone());
                i += 2;
            }
            "--gate" => {
                opts.gate = Some(value(i)?.parse().map_err(|e| format!("--gate: {e}"))?);
                i += 2;
            }
            "--budget-secs" => {
                opts.budget_secs = value(i)?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?;
                i += 2;
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            "--resume" => {
                opts.checkpoint = Some(PathBuf::from(value(i)?));
                opts.resume = true;
                i += 2;
            }
            other => {
                return Err(format!(
                    "unknown flag {other} (see --help in the doc header)"
                ))
            }
        }
    }
    if !matches!(opts.automaton.as_str(), "bv" | "simplified" | "all") {
        return Err(format!(
            "--automaton must be bv, simplified or all (got {})",
            opts.automaton
        ));
    }
    if opts.smoke && opts.automaton == "simplified" {
        return Err("--smoke is a bv-broadcast subset; drop --automaton simplified".into());
    }
    Ok(opts)
}

fn summarize(m: &KillMatrix) {
    println!("{}", m.render());
    println!(
        "{}: {} mutants — {} killed, {} rejected statically, {} survived, {} unknown \
         (caught rate {:.1}%)",
        m.automaton,
        m.total(),
        m.killed(),
        m.rejected(),
        m.survived(),
        m.unknown(),
        100.0 * m.caught_rate()
    );
    for (id, props) in m.unconfirmed_kills() {
        println!(
            "  !! {id}: unconfirmed counterexample for {}",
            props.join(", ")
        );
    }
    println!();
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mutation_matrix: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config_for = |corpus: &str| -> Result<KillConfig, String> {
        let checkpoint = match &opts.checkpoint {
            None => None,
            Some(dir) => {
                let sub = dir.join(corpus);
                if opts.resume && !sub.join("manifest.json").exists() {
                    return Err(format!(
                        "--resume: no checkpoint manifest at {} (use --checkpoint to start one)",
                        sub.display()
                    ));
                }
                Some(sub)
            }
        };
        Ok(KillConfig {
            workers: opts.workers,
            time_budget: Duration::from_secs(opts.budget_secs),
            checkpoint,
            ..KillConfig::default()
        })
    };
    let start = std::time::Instant::now();
    let mut matrices = Vec::new();

    if opts.automaton == "bv" || opts.automaton == "all" {
        let (model, mut corpus) = bv_broadcast_corpus();
        if opts.smoke {
            let keep = smoke_ids();
            corpus.retain(|m| keep.contains(&m.id.as_str()));
            assert_eq!(corpus.len(), keep.len(), "smoke ids must all exist");
        }
        let properties = bv_kill_properties(&model);
        println!(
            "bv-broadcast: {} mutants x {} properties",
            corpus.len(),
            properties.len()
        );
        let config = match config_for("bv_broadcast") {
            Ok(c) => c,
            Err(e) => {
                eprintln!("mutation_matrix: {e}");
                return ExitCode::FAILURE;
            }
        };
        matrices.push(run_kill_matrix(
            "bv_broadcast",
            &corpus,
            &properties,
            Justice::from_rules,
            &config,
        ));
        summarize(matrices.last().unwrap());
    }

    if !opts.smoke && (opts.automaton == "simplified" || opts.automaton == "all") {
        let (model, corpus) = simplified_corpus();
        let properties = simplified_kill_properties(&model);
        println!(
            "simplified-consensus: {} mutants x {} properties",
            corpus.len(),
            properties.len()
        );
        // The Appendix-F justice is requirement-based (location/variable
        // ids, which rule surgery leaves untouched), so the pristine
        // model's justice applies to every mutant.
        let justice = model.justice();
        let config = match config_for("simplified_consensus") {
            Ok(c) => c,
            Err(e) => {
                eprintln!("mutation_matrix: {e}");
                return ExitCode::FAILURE;
            }
        };
        matrices.push(run_kill_matrix(
            "simplified_consensus",
            &corpus,
            &properties,
            |_| justice.clone(),
            &config,
        ));
        summarize(matrices.last().unwrap());
    }

    println!("total wall clock: {:.1?}", start.elapsed());

    if let Some(path) = &opts.out {
        let body: Vec<String> = matrices.iter().map(KillMatrix::to_json).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("mutation_matrix: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("kill matrix written to {path}");
    }

    if let Some(min_rate) = opts.gate {
        for m in &matrices {
            if let Err(e) = m.gate(min_rate) {
                eprintln!("mutation_matrix: GATE FAILED for {}: {e}", m.automaton);
                return ExitCode::FAILURE;
            }
        }
        println!(
            "gate passed: every matrix caught >= {:.0}% with all kills confirmed",
            100.0 * min_rate
        );
    }
    ExitCode::SUCCESS
}
