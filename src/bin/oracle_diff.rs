//! The differential validation driver.
//!
//! Runs every Table-2 cell and every seeded mutant corpus through both
//! the symbolic checker and the explicit-state oracle at small concrete
//! parameters, compares verdicts under the soundness-approximation
//! rules, replays every symbolic counterexample through the oracle's
//! transition relation, and (in full scope) adjudicates the two
//! documented kill-matrix survivors.
//!
//! ```text
//! cargo run --release --bin oracle_diff                    # full sweep + adjudication
//! cargo run --release --bin oracle_diff -- --smoke         # CI subset (bv-broadcast only)
//! cargo run --release --bin oracle_diff -- --out diff.json # write the JSON report
//! cargo run --release --bin oracle_diff -- --max-states N  # oracle BFS budget per cell
//! cargo run --release --bin oracle_diff -- --bound B       # parameter sweep bound
//! ```
//!
//! Exit status 1 on any definite-verdict disagreement or replay
//! failure — those are soundness bugs in one of the two pipelines.

use std::env;
use std::process::ExitCode;

use holistic_oracle::{run_diff, DiffConfig};

struct Options {
    smoke: bool,
    out: Option<String>,
    max_states: Option<usize>,
    bound: Option<i64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        out: None,
        max_states: None,
        bound: None,
    };
    let args: Vec<String> = env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            "--out" => {
                opts.out = Some(value(i)?.clone());
                i += 2;
            }
            "--max-states" => {
                opts.max_states = Some(
                    value(i)?
                        .parse()
                        .map_err(|e| format!("--max-states: {e}"))?,
                );
                i += 2;
            }
            "--bound" => {
                opts.bound = Some(value(i)?.parse().map_err(|e| format!("--bound: {e}"))?);
                i += 2;
            }
            other => {
                return Err(format!(
                    "unknown flag {other} (see --help in the doc header)"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("oracle_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = if opts.smoke {
        DiffConfig::smoke()
    } else {
        DiffConfig::full()
    };
    if let Some(n) = opts.max_states {
        cfg.max_states = n;
    }
    if let Some(b) = opts.bound {
        cfg.param_bound = b;
    }
    println!(
        "oracle_diff: {} scope, state budget {}, parameters <= {}",
        if cfg.smoke { "smoke" } else { "full" },
        cfg.max_states,
        cfg.param_bound
    );
    let start = std::time::Instant::now();
    let report = run_diff(&cfg, |cell| {
        println!(
            "  {} {} -> {} [{}]",
            cell.subject,
            cell.name,
            cell.symbolic,
            cell.agreement.label()
        );
    });
    println!();
    println!("{}", report.render());
    println!("total wall clock: {:.1?}", start.elapsed());

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("oracle_diff: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("diff report written to {path}");
    }

    if !report.passed() {
        eprintln!(
            "oracle_diff: {} DEFINITE-VERDICT DISAGREEMENT(S) — soundness bug in one of the \
             two pipelines",
            report.disagreements().len()
        );
        return ExitCode::FAILURE;
    }
    println!("oracle_diff: zero definite-verdict disagreements");
    ExitCode::SUCCESS
}
