//! Umbrella crate for the holistic-verification workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can use a single dependency.

pub use holistic_bench as bench;
pub use holistic_checker as checker;
pub use holistic_core as core;
pub use holistic_lia as lia;
pub use holistic_ltl as ltl;
pub use holistic_models as models;
pub use holistic_mutate as mutate;
pub use holistic_obs as obs;
pub use holistic_sim as sim;
pub use holistic_ta as ta;
