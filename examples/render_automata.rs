//! Regenerates the paper's figures and descriptive tables from the
//! model definitions:
//!
//! ```text
//! cargo run --example render_automata -- fig2    # bv-broadcast TA (DOT)
//! cargo run --example render_automata -- fig3    # naive consensus TA (DOT)
//! cargo run --example render_automata -- fig4    # simplified consensus TA (DOT)
//! cargo run --example render_automata -- table1  # location semantics (Table 1)
//! cargo run --example render_automata -- table3  # rules of the naive TA (Table 3)
//! ```
//!
//! Pipe the `figN` output through `dot -Tpdf` to get the diagrams.

use holistic_verification::models::{
    BvBroadcastModel, NaiveConsensusModel, SimplifiedConsensusModel,
};
use holistic_verification::ta::to_dot;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "fig2".to_owned());
    match what.as_str() {
        "fig2" => print!("{}", to_dot(&BvBroadcastModel::new().ta)),
        "fig3" => print!("{}", to_dot(&NaiveConsensusModel::new().ta)),
        "fig4" => print!("{}", to_dot(&SimplifiedConsensusModel::new().ta)),
        "table1" => {
            let model = BvBroadcastModel::new();
            println!("Table 1 — the locations of correct processes (bv-broadcast)");
            println!(
                "{:<10} {:<18} {:<18}",
                "location", "values broadcast", "values delivered"
            );
            for row in model.location_table() {
                println!(
                    "{:<10} {:<18} {:<18}",
                    row.location, row.broadcast, row.delivered
                );
            }
        }
        "table3" => {
            let model = NaiveConsensusModel::new();
            println!("Table 3 — the rules of the naive consensus automaton (Fig. 3)");
            println!("{:<8} {:<28} update", "rule", "guard");
            for (name, guard, update) in model.rule_table() {
                println!("{name:<8} {guard:<28} {update}");
            }
        }
        other => {
            eprintln!("unknown target {other:?}; use fig2|fig3|fig4|table1|table3");
            std::process::exit(2);
        }
    }
}
