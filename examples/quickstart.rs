//! Quickstart: verify one property of the binary value broadcast for
//! **all** parameters `n > 3t ≥ 3f ≥ 0`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use holistic_verification::checker::Checker;
use holistic_verification::models::BvBroadcastModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The threshold automaton of the paper's Fig. 2, with its
    // specifications and reliable-communication justice.
    let model = BvBroadcastModel::new();
    let (guards, locations, rules) = model.ta.size_summary();
    println!(
        "bv-broadcast automaton: {guards} unique guards, {locations} locations, {rules} rules"
    );

    // BV-Justification: a value delivered by a correct process was
    // bv-broadcast by a correct process — checked for every n, t, f
    // admitted by the resilience condition, not for one instance.
    let checker = Checker::new();
    let report = checker.check_ltl(&model.ta, &model.justification(0), &model.justice())?;

    println!(
        "BV-Justification(0): {:?} ({} schemas, {:.2?})",
        report.verdict(),
        report.total_schemas(),
        report.duration
    );
    assert!(report.verdict().is_verified());
    println!("holds for every n > 3t >= 3f >= 0.");
    Ok(())
}
