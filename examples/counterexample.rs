//! The §6 counterexample experiment: weaken the resilience condition
//! from `n > 3t` to `n > 2t` and the checker *finds and replays* an
//! agreement violation of Inv1₀ — one process decides 1 in the odd
//! round, another decides 0 in the even round.
//!
//! ```text
//! cargo run --release --example counterexample
//! ```

use holistic_verification::checker::Checker;
use holistic_verification::models::SimplifiedConsensusModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Standard resilience: Inv1_0 is verified (see the
    // holistic_verification example). Weakened resilience n > 2t:
    let model = SimplifiedConsensusModel::with_resilience(2);
    let checker = Checker::new();
    let report = checker.check_ltl(&model.ta, &model.inv1(0), &model.justice())?;

    match report.verdict() {
        holistic_verification::checker::Verdict::Violated(ce) => {
            println!(
                "Inv1_0 is violated under n > 2t (found in {:.2?}, {} schemas):",
                report.duration,
                report.total_schemas()
            );
            println!();
            println!("{}", ce.display(&model.ta));
            println!();
            println!(
                "the trace is replay-validated against the concrete counter-system \
                 semantics: with only n > 2t, an n−t aux quorum no longer intersects \
                 itself enough, so D1 (round 1) and D0 (round 2) are both reachable — \
                 a double spend."
            );
        }
        other => panic!("expected a violation, got {other:?}"),
    }
    Ok(())
}
