//! The full holistic pipeline of the paper: verify the inner broadcast,
//! substitute the gadget, verify the outer consensus, and assemble the
//! Theorem 6 argument.
//!
//! ```text
//! cargo run --release --example holistic_verification
//! ```
//!
//! Expect a couple of minutes on a laptop: the two full-lattice
//! properties (Inv1, SRoundTerm) dominate.

use holistic_verification::core::HolisticVerification;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = HolisticVerification::new();

    println!("phase 1 — inner algorithm: binary value broadcast (Fig. 2)");
    let inner = pipeline.verify_inner()?;
    for r in &inner {
        println!(
            "  {:<10} {:<9} {:>4} schemas  {:>9.2?}",
            r.name,
            if r.verdict.is_verified() {
                "verified"
            } else {
                "FAILED"
            },
            r.schemas,
            r.duration
        );
    }

    println!("phase 2 — substitution: the verified broadcast becomes the gadget justice");
    println!("  (BV-Termination, BV-Obligation, BV-Uniformity -> Appendix F requirements)");

    println!("phase 3 — outer algorithm: simplified consensus (Fig. 4)");
    let outer = pipeline.verify_outer()?;
    for r in &outer {
        println!(
            "  {:<10} {:<9} {:>4} schemas  {:>9.2?}",
            r.name,
            if r.verdict.is_verified() {
                "verified"
            } else {
                "FAILED"
            },
            r.schemas,
            r.duration
        );
    }

    let report = holistic_verification::core::HolisticReport {
        inner,
        outer,
        duration: Default::default(),
    };
    println!();
    print!("{}", report.theorem6());
    assert!(report.all_verified());
    Ok(())
}
