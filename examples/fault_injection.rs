//! Adversarial fault injection: the standard robustness sweep, and
//! delta-debugging a violation out of a mis-parameterized deployment.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! Part 1 runs [`FaultPlan::standard`]: every Byzantine strategy
//! (silence, equivocation, targeted lying, value-flip spam, Lemma-7
//! stalling) × every fault schedule (reliable, lossy, chaotic,
//! partitioned) × three system sizes at the resilience boundary
//! `f = t = ⌊(n−1)/3⌋`. Within `t < n/3` every run must satisfy
//! Agreement, Validity and BV-Justification.
//!
//! Part 2 breaks the precondition — `n = 3, t = 1` has `t ≥ n/3` — and
//! lets the equivocator split the correct processes. The recorded
//! schedule is then delta-debugged (prefix bisection + ddmin) to a
//! 1-minimal reproducing trace, which replays deterministically.

use holistic_verification::sim::{
    monitor, plan, shrink, FaultPlan, FaultScheduleKind, Scenario, SimParams, StrategyKind,
};

fn main() {
    // ------------------------------------------------------------------
    // Part 1: the standard sweep.
    // ------------------------------------------------------------------
    let fault_plan = FaultPlan::standard(2026);
    println!(
        "sweep: {} scenarios (3 sizes x {} strategies x {} fault schedules)",
        fault_plan.scenarios.len(),
        StrategyKind::all().len(),
        FaultScheduleKind::all().len(),
    );
    let reports = fault_plan.run();
    let mut violations = 0;
    for report in &reports {
        if !report.is_safe() {
            violations += 1;
            println!("  VIOLATION {}: {:?}", report.label, report.violations);
        }
    }
    let decided = reports
        .iter()
        .filter(|r| r.outcome == holistic_verification::sim::Outcome::AllDecided)
        .count();
    let dropped: u64 = reports.iter().map(|r| r.dropped).sum();
    let retransmitted: u64 = reports.iter().map(|r| r.retransmissions).sum();
    println!(
        "  {}/{} decided, {} messages dropped, {} retransmissions, {} safety violations",
        decided,
        reports.len(),
        dropped,
        retransmitted,
        violations,
    );
    assert_eq!(violations, 0, "safety must hold within t < n/3");

    // ------------------------------------------------------------------
    // Part 2: break t < n/3, find the violation, shrink it.
    // ------------------------------------------------------------------
    let params = SimParams { n: 3, t: 1, f: 1 };
    println!();
    println!(
        "mis-parameterized deployment: n = {}, t = {} (t >= n/3)",
        params.n, params.t
    );
    let shrunk = (0..50)
        .find_map(|seed| {
            let mut scenario = Scenario::new(
                params,
                StrategyKind::Equivocator,
                FaultScheduleKind::Reliable,
                seed,
            );
            scenario.proposals = vec![0, 1, 0];
            scenario.max_deliveries = 5_000;
            plan::shrink_first_violation(&scenario)
        })
        .expect("the equivocator must split n = 3, t = 1");
    println!(
        "  equivocator breaks {}: schedule shrunk {} -> {} events (1-minimal)",
        shrunk.violation.property,
        shrunk.original_len,
        shrunk.minimal.len(),
    );

    // The minimal schedule replays deterministically — a regression
    // fixture needing no adversary, no scheduler, no fault layer.
    let replayed = shrink::replay(params, &[0, 1, 0], &shrunk.minimal);
    let violation = monitor::check_agreement(&replayed)
        .expect_err("the minimal trace must reproduce the disagreement");
    println!("  replayed fixture: {violation}");
}
