//! Run the DBFT consensus in the message-level simulator: random
//! asynchronous schedules with Byzantine noise, and the fair scheduler
//! that realises the paper's fairness assumption.
//!
//! ```text
//! cargo run --release --example simulate_dbft
//! ```

use holistic_verification::sim::{
    monitor, GoodRoundScheduler, Outcome, RandomScheduler, SimParams, Simulation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = SimParams { n: 7, t: 2, f: 2 };
    let proposals = [0, 1, 0, 1, 1, 0, 0]; // last f = 2 are Byzantine
    let correct_proposals = &proposals[..params.n - params.f];

    println!(
        "n = {}, t = {}, f = {} (Byzantine: p5, p6)",
        params.n, params.t, params.f
    );
    println!("correct proposals: {correct_proposals:?}");
    println!();

    // 1. Random asynchronous schedules with Byzantine noise: safety
    //    always holds; termination usually happens but is not
    //    guaranteed (that is the whole point of the fairness
    //    assumption).
    let mut decided_runs = 0;
    for seed in 0..20 {
        let mut sim = Simulation::new(params, &proposals);
        let mut sched = RandomScheduler::with_noise(StdRng::seed_from_u64(seed), 100);
        let outcome = sim.run(&mut sched, 400_000);
        monitor::check_safety(&sim, correct_proposals).expect("safety must hold");
        if outcome == Outcome::AllDecided {
            decided_runs += 1;
        }
    }
    println!("random scheduler + Byzantine noise: 20/20 safe, {decided_runs}/20 decided");

    // 2. The fair scheduler (v-good rounds): termination guaranteed.
    let mut sim = Simulation::new(params, &proposals);
    let mut sched = GoodRoundScheduler::new();
    let outcome = sim.run(&mut sched, 1_000_000);
    assert_eq!(outcome, Outcome::AllDecided);
    monitor::check_safety(&sim, correct_proposals).expect("safety");
    let d = sim.decisions().into_iter().flatten().next().unwrap();
    println!(
        "fair scheduler: all correct processes decided {} (first at round {}) after {} deliveries",
        d.value,
        d.round,
        sim.deliveries()
    );
    if let Some(r) = monitor::find_good_round(&sim) {
        println!("round {r} was (r mod 2)-good, as the fairness assumption requires");
    }
}
