//! The paper's Lemma 7 (Appendix B), executed: without the fairness
//! assumption, a Byzantine process plus a crafted delivery order keep
//! DBFT from ever terminating — `n = 4`, `t = f = 1`, proposals
//! `0, 0, 1`.
//!
//! ```text
//! cargo run --release --example non_termination
//! ```

use holistic_verification::sim::{monitor, run_lemma7};

fn main() {
    let superrounds = 25;
    println!("driving the Lemma 7 adversary for {superrounds} superrounds…");
    let sim = run_lemma7(superrounds);

    assert!(
        sim.decisions().iter().all(Option::is_none),
        "nobody may decide under the adversarial schedule"
    );
    println!(
        "after {} deliveries and {} rounds: no correct process has decided.",
        sim.deliveries(),
        superrounds * 2
    );
    for p in sim.correct_ids() {
        let proc = sim.process(p);
        println!(
            "  {p}: round {}, estimate {}",
            proc.round(),
            proc.estimate()
        );
    }

    // Safety is never violated — the adversary can only stall.
    monitor::check_safety(&sim, &[0, 0, 1]).expect("safety holds even here");
    // And indeed no round was (r mod 2)-good: the schedule breaks
    // exactly the fairness assumption of Definition 3.
    assert_eq!(monitor::find_good_round(&sim), None);
    println!("no (r mod 2)-good round occurred: Definition 3's fairness was violated.");
    println!("this is why Theorem 6 needs the fair bv-broadcast assumption.");
}
